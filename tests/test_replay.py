"""Tests for steady-state iteration capture & replay (repro.perf.replay).

Replay is a pure optimization: every test here either shows it engaging
(fewer engine events, same rendered numbers) or falling back cleanly
(diagnostics attached, results bitwise-unchanged).
"""

import pytest

from repro.errors import ConfigError
from repro.harness.runner import run_batch
from repro.npb import get_benchmark
from repro.perf.replay import (
    ReplayRecorder,
    deterministic_variant,
    replay_scope,
)
from repro.platforms import VAYU, get_platform
from repro.platforms.base import Platform
from repro.sim.engine import Engine
from repro.smpi.world import MpiWorld

QUIET = deterministic_variant(VAYU)


def _run_cg(replay: bool, sim_iters: int = 16, nprocs: int = 8, seed: int = 7):
    """One CG steady loop on the quiet platform; (engine, result)."""
    bench = get_benchmark("cg", sim_iters=sim_iters)
    world = MpiWorld(QUIET, nprocs, seed=seed, replay=replay)
    result = world.launch(bench.make_program())
    return world.engine, result


class TestEngagement:
    def test_fast_forward_cuts_events(self):
        full, _ = _run_cg(False)
        fast, result = _run_cg(True)
        assert result.replay is not None and result.replay.active
        assert result.replay.replayed_iters > 0
        assert full.dispatched / fast.dispatched >= 3.0

    def test_loop_accounting(self):
        _, result = _run_cg(True)
        (loop,) = result.replay.loops
        assert loop.label == "npb:cg"
        assert loop.simulated + loop.replayed == loop.total == 16
        assert loop.replayed >= loop.total - 3  # k=2 plus decision lag

    def test_results_identical_at_report_precision(self):
        _, off = _run_cg(False)
        _, on = _run_cg(True)
        assert on.wall_time == pytest.approx(off.wall_time, rel=1e-9)
        for p_on, p_off in zip(on.monitor.profiles, off.monitor.profiles):
            assert p_on.regions.keys() == p_off.regions.keys()
            for name, r_on in p_on.regions.items():
                r_off = p_off.regions[name]
                # The precision every report renders at (and then some).
                assert f"{r_on.wall_time:.6f}" == f"{r_off.wall_time:.6f}"
                assert f"{r_on.compute_time:.6f}" == f"{r_off.compute_time:.6f}"

    def test_bench_report_renders_identically(self):
        bench = get_benchmark("cg", sim_iters=16)
        with replay_scope(False):
            off = bench.run(QUIET, 8, seed=7)
        with replay_scope(True) as reports:
            on = bench.run(QUIET, 8, seed=7)
        assert any(r.replayed_iters > 0 for r in reports)
        assert f"{on.projected_time:.4f}" == f"{off.projected_time:.4f}"
        assert f"{on.per_iter_time:.6f}" == f"{off.per_iter_time:.6f}"
        assert f"{on.comm_percent:.2f}" == f"{off.comm_percent:.2f}"


class TestFallback:
    @pytest.mark.parametrize("platform", ["vayu", "dcc", "ec2"])
    def test_registered_platforms_are_refused(self, platform):
        world = MpiWorld(get_platform(platform), 4, seed=1, replay=True)
        assert world.replay is not None and not world.replay.active
        assert "stochastic" in world.replay.reason

    def test_sanitizer_forces_fallback(self):
        world = MpiWorld(QUIET, 4, seed=1, sanitize=True, replay=True)
        assert not world.replay.active
        assert "sanitizer" in world.replay.reason

    def test_faults_force_fallback(self):
        world = MpiWorld(
            QUIET, 4, seed=1, faults="nfs:start=0,dur=10,factor=2", replay=True
        )
        assert not world.replay.active
        assert "fault" in world.replay.reason

    def test_timeline_forces_fallback(self):
        world = MpiWorld(QUIET, 4, seed=1, timeline=True, replay=True)
        assert not world.replay.active
        assert "timeline" in world.replay.reason

    def test_engine_tracer_forces_fallback(self):
        engine = Engine(seed=1, trace=True)
        world = MpiWorld(Platform(QUIET, engine), 4, replay=True)
        assert not world.replay.active
        assert "tracer" in world.replay.reason

    def test_fallback_is_bitwise_inert(self):
        """A refused recorder must not perturb the simulation at all."""
        base = MpiWorld(get_platform("vayu"), 4, seed=3).launch(
            get_benchmark("cg", sim_iters=4).make_program()
        )
        refused = MpiWorld(get_platform("vayu"), 4, seed=3, replay=True).launch(
            get_benchmark("cg", sim_iters=4).make_program()
        )
        assert refused.replay is not None and not refused.replay.active
        assert refused.wall_time == base.wall_time

    def test_k_must_be_at_least_two(self):
        world = MpiWorld(QUIET, 2, seed=1)
        with pytest.raises(ConfigError):
            ReplayRecorder(world, k=1)


class TestStationarity:
    def test_varying_iterations_never_replay(self):
        def _body(comm, it):
            yield from comm.compute(flops=1e6 * (it + 1))
            yield from comm.allreduce(8, value=0.0)

        def varying(comm, iters: int):
            for it in range(iters):
                yield from comm.iteration_scope(
                    it, iters, lambda it=it: _body(comm, it), label="varying"
                )

        runs = {}
        for replay in (False, True):
            world = MpiWorld(QUIET, 4, seed=5, replay=replay)
            runs[replay] = world.launch(varying, 12)
        report = runs[True].replay
        assert report.active
        assert report.replayed_iters == 0  # captures never stationary
        assert runs[True].wall_time == runs[False].wall_time

    def test_steady_iterations_do_replay(self):
        def _body(comm):
            yield from comm.compute(flops=1e6)
            yield from comm.allreduce(8, value=0.0)

        def steady(comm, iters: int):
            for it in range(iters):
                yield from comm.iteration_scope(
                    it, iters, lambda: _body(comm), label="steady"
                )

        world = MpiWorld(QUIET, 4, seed=5, replay=True)
        result = world.launch(steady, 12)
        assert result.replay.replayed_iters > 0


class TestOsuPhases:
    def test_warmup_and_timed_loops_replay_separately(self):
        from repro.osu.latency import osu_latency

        with replay_scope(True) as reports:
            on = osu_latency(QUIET, sizes=[8], iterations=30, warmup=5, seed=3)
        off = osu_latency(QUIET, sizes=[8], iterations=30, warmup=5, seed=3)
        assert on[8] == pytest.approx(off[8], rel=1e-9)
        loops = {s.label: s for r in reports for s in r.loops}
        warm = loops["latency:8:warmup"]
        timed = loops["latency:8:timed"]
        assert (warm.total, warm.replayed) == (5, 2)
        assert (timed.total, timed.replayed) == (30, 27)


class TestBatchIntegration:
    def test_all_experiments_byte_identical(self):
        """Replay on vs off across every registered experiment."""
        off = run_batch(None, quick=True, seed=3, replay=False)
        on = run_batch(None, quick=True, seed=3, replay=True)
        assert off.perf_summary is None
        assert on.perf_summary is not None and on.perf_summary.startswith("perf:")
        for eid, out in off.outputs.items():
            assert on.outputs[eid].render() == out.render(), eid
        assert on.comparison_rows() == off.comparison_rows()
        # The full reports differ only by the [perf: ...] banner.
        assert on.render().split("\n\n[perf:")[0] == off.render()

    def test_batch_exports_identical(self, tmp_path):
        off = run_batch(["fig3"], quick=True, seed=3, replay=False)
        on = run_batch(["fig3"], quick=True, seed=3, replay=True)
        for batch, tag in ((off, "off"), (on, "on")):
            batch.write_json(tmp_path / f"{tag}.json")
            batch.write_csv(tmp_path / f"{tag}.csv")
        assert (tmp_path / "on.json").read_bytes() == (tmp_path / "off.json").read_bytes()
        assert (tmp_path / "on.csv").read_bytes() == (tmp_path / "off.csv").read_bytes()

    def test_sim_iters_validation(self):
        with pytest.raises(ConfigError):
            run_batch(["tab1"], sim_iters=0)

    def test_sim_iters_reaches_benchmark(self):
        from repro.harness.parallel import npb_point

        point = npb_point("cg", "vayu", 2, 0, "B", 6)
        direct = get_benchmark("cg", sim_iters=6).run(get_platform("vayu"), 2, seed=0)
        assert point["projected_time"] == direct.projected_time
        assert point["per_iter_time"] == direct.per_iter_time


class TestEngineBench:
    def test_replay_workload_event_ratio(self):
        from repro.perf.enginebench import replay_event_counts

        counts = replay_event_counts()
        assert counts["events_ratio"] >= 3.0
        assert counts["replayed_iters"] > 0
        assert counts["replay_events"] < counts["full_events"]

    def test_baseline_check(self):
        from repro.perf.enginebench import check_against_baseline

        rows = {"p2p": {"events_per_sec": 65_000.0}}
        base = {"p2p": {"events_per_sec": 100_000.0},
                "other": {"events_per_sec": 1.0}}
        assert check_against_baseline(rows, base, tolerance=0.30)
        assert not check_against_baseline(rows, base, tolerance=0.40)
        with pytest.raises(ConfigError):
            check_against_baseline(rows, base, tolerance=1.5)
