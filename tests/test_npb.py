"""Tests for the NPB problem classes, skeletons and scaling behaviour."""

import pytest

from repro.errors import ConfigError
from repro.npb import (
    BENCHMARK_NAMES,
    STEADY_REGION,
    get_benchmark,
    problem,
    valid_nprocs,
)
from repro.npb.base import intra_fraction, mixed_msg_time
from repro.platforms import DCC, EC2, VAYU


class TestProblemClasses:
    def test_all_benchmarks_have_all_classes(self):
        for name in BENCHMARK_NAMES:
            for klass in ("S", "W", "A", "B", "C"):
                cfg = problem(name, klass)
                assert cfg.total_flops > 0
                assert cfg.iterations >= 1

    def test_class_b_dims_official(self):
        assert problem("ft", "B").dims == (512, 256, 256)
        assert problem("cg", "B").dims == (75000, 13, 60)
        assert problem("lu", "B").dims == (102,)
        assert problem("is", "B").dims == (25, 21)

    def test_class_work_ordering(self):
        for name in BENCHMARK_NAMES:
            works = [problem(name, k).total_flops for k in ("S", "W", "A", "B", "C")]
            assert works == sorted(works), name

    def test_unknown_names_rejected(self):
        with pytest.raises(ConfigError):
            problem("xx")
        with pytest.raises(ConfigError):
            problem("cg", "Z")
        with pytest.raises(ConfigError):
            get_benchmark("nope")

    def test_per_iter_helpers(self):
        cfg = problem("ft", "B")
        assert cfg.flops_per_iter * cfg.iterations == pytest.approx(cfg.total_flops)


class TestValidProcessCounts:
    def test_powers_of_two_for_kernels(self):
        assert valid_nprocs("cg", 64) == [1, 2, 4, 8, 16, 32, 64]

    def test_squares_for_bt_sp(self):
        assert valid_nprocs("bt", 64) == [1, 4, 9, 16, 25, 36, 49, 64]
        assert valid_nprocs("sp", 64) == valid_nprocs("bt", 64)

    def test_ep_accepts_anything(self):
        counts = valid_nprocs("ep", 12)
        assert counts == list(range(1, 13))

    def test_ft_limited_by_slabs(self):
        bench = get_benchmark("ft")
        assert bench.valid_nprocs(256)
        assert not bench.valid_nprocs(512)

    def test_run_rejects_invalid_counts(self):
        with pytest.raises(ConfigError):
            get_benchmark("bt").run(VAYU, 8)
        with pytest.raises(ConfigError):
            get_benchmark("cg").run(VAYU, 3)


class TestDecompositionHelpers:
    def test_grid2d_factorises(self):
        bench = get_benchmark("cg")
        for p in (1, 2, 4, 8, 16, 64):
            px, py = bench.grid2d(p)
            assert px * py == p and px <= py

    def test_grid3d_factorises(self):
        bench = get_benchmark("mg")
        for p in (1, 8, 16, 32, 64):
            dims = bench.grid3d(p)
            assert dims[0] * dims[1] * dims[2] == p

    def test_grid_helpers_reject_non_powers(self):
        with pytest.raises(ConfigError):
            get_benchmark("cg").grid2d(6)

    def test_split_extent_conserves_total(self):
        bench = get_benchmark("cg")
        total = sum(bench.split_extent(481, 7, i) for i in range(7))
        assert total == 481

    def test_intra_fraction(self):
        assert intra_fraction(1, 8) == pytest.approx(7 / 8)
        assert intra_fraction(8, 8) == 0.0
        assert intra_fraction(0, 8) == 1.0
        with pytest.raises(ConfigError):
            intra_fraction(1, 0)


class TestBenchResults:
    def test_result_labels(self):
        r = get_benchmark("cg").run(VAYU, 4, seed=1)
        assert r.label() == "CG.B.4"

    def test_projection_arithmetic(self):
        r = get_benchmark("ft", sim_iters=2).run(VAYU, 4, seed=1)
        assert r.sim_iters == 2
        assert r.projected_time == pytest.approx(
            r.setup_time + r.per_iter_time * r.total_iters
        )
        assert r.projected_time > r.wall_time  # 20 iterations projected from 2

    def test_steady_region_exists(self):
        r = get_benchmark("mg").run(VAYU, 8, seed=1)
        assert STEADY_REGION in r.monitor.region_names()

    def test_sim_iters_capped_at_total(self):
        bench = get_benchmark("is", sim_iters=500)
        assert bench.sim_iters == bench.cfg.iterations

    def test_deterministic_given_seed(self):
        a = get_benchmark("cg").run(DCC, 8, seed=9).projected_time
        b = get_benchmark("cg").run(DCC, 8, seed=9).projected_time
        assert a == b


class TestPaperShapes:
    """The qualitative Fig 3/4 and Table II claims, as assertions."""

    def test_fig3_serial_calibration(self):
        from repro.harness.paper import FIG3_DCC_SERIAL_SECONDS

        for name, ref in FIG3_DCC_SERIAL_SECONDS.items():
            t = get_benchmark(name).run(DCC, 1, seed=1).projected_time
            assert t == pytest.approx(ref, rel=0.15), name

    def test_fig3_vayu_normalised_band(self):
        for name in ("ep", "lu", "sp"):
            dcc = get_benchmark(name).run(DCC, 1, seed=1).projected_time
            vayu = get_benchmark(name).run(VAYU, 1, seed=1).projected_time
            assert 0.6 < vayu / dcc < 0.9, name

    def test_ep_near_linear_on_bare_metal(self):
        bench = get_benchmark("ep")
        t1 = bench.run(VAYU, 1, seed=1).projected_time
        t64 = bench.run(VAYU, 64, seed=1).projected_time
        assert t1 / t64 > 55

    def test_ep_ec2_ht_penalty_at_16(self):
        bench = get_benchmark("ep")
        t8 = bench.run(EC2, 8, seed=1).projected_time
        t16 = bench.run(EC2, 16, seed=1).projected_time
        # One HT-subscribed node: far from doubling.
        assert t8 / t16 < 1.5

    def test_cg_dcc_drops_at_eight(self):
        """The paper's NUMA-masking signature (Fig 4, section V-B)."""
        bench = get_benchmark("cg")
        t1 = bench.run(DCC, 1, seed=1).projected_time
        s4 = t1 / bench.run(DCC, 4, seed=1).projected_time
        s8 = t1 / bench.run(DCC, 8, seed=1).projected_time
        s16 = t1 / bench.run(DCC, 16, seed=1).projected_time
        assert s8 < s4  # the drop at 8
        assert s16 > s8  # recovery from 16 onwards

    def test_cg_vayu_scales_far_beyond_dcc(self):
        bench = get_benchmark("cg")
        for spec, floor in ((VAYU, 25.0), (DCC, 3.0)):
            t1 = bench.run(spec, 1, seed=1).projected_time
            s64 = t1 / bench.run(spec, 64, seed=1).projected_time
            assert s64 > floor, spec.name
        t1v = bench.run(VAYU, 1, seed=1).projected_time
        t1d = bench.run(DCC, 1, seed=1).projected_time
        s64v = t1v / bench.run(VAYU, 64, seed=1).projected_time
        s64d = t1d / bench.run(DCC, 64, seed=1).projected_time
        assert s64v > 3 * s64d

    def test_is_poor_everywhere(self):
        bench = get_benchmark("is")
        for spec in (DCC, EC2, VAYU):
            t1 = bench.run(spec, 1, seed=1).projected_time
            s64 = t1 / bench.run(spec, 64, seed=1).projected_time
            assert s64 < 40, spec.name

    def test_table2_comm_ordering_dcc_worst(self):
        for name in ("cg", "ft", "is"):
            bench_d = get_benchmark(name).run(DCC, 64, seed=1).comm_percent
            bench_e = get_benchmark(name).run(EC2, 64, seed=1).comm_percent
            bench_v = get_benchmark(name).run(VAYU, 64, seed=1).comm_percent
            assert bench_d > bench_e > bench_v, name

    def test_table2_comm_grows_with_np(self):
        for spec in (DCC, VAYU):
            pcts = [
                get_benchmark("is").run(spec, p, seed=1).comm_percent
                for p in (2, 16, 64)
            ]
            assert pcts[0] < pcts[1] < pcts[2], spec.name

    def test_ft_dcc_recovers_above_16(self):
        """All-to-all message sizes shrink with p (section V-B)."""
        bench = get_benchmark("ft")
        t1 = bench.run(DCC, 1, seed=1).projected_time
        s16 = t1 / bench.run(DCC, 16, seed=1).projected_time
        s64 = t1 / bench.run(DCC, 64, seed=1).projected_time
        assert s64 > 1.5 * s16

    def test_bt_runs_at_square_counts(self):
        bench = get_benchmark("bt")
        r36 = bench.run(VAYU, 36, seed=1)
        assert r36.label() == "BT.B.36"
        t1 = bench.run(VAYU, 1, seed=1).projected_time
        assert t1 / r36.projected_time > 15
