"""Tests for the TCP work-queue backend (repro.harness.netqueue).

Exercises both sides of the wire: framing, error transport, the
coordinator's lease/re-queue machinery against in-process fake workers
(so worker death is deterministic and instant), the worker loop against
a fake coordinator, and one end-to-end sweep through real spawned
``repro worker`` subprocesses.
"""

from __future__ import annotations

import socket
import threading

import pytest

from repro.cli import main
from repro.errors import ConfigError, RemoteCellError, ReproError
from repro.harness.executor import WorkerLostError, make_executor
from repro.harness.journal import encode_value
from repro.harness.netqueue import (
    PROTOCOL_VERSION,
    RemoteWorkerFailure,
    WorkQueueExecutor,
    _decode_error,
    _encode_error,
    recv_frame,
    run_worker,
    send_frame,
)
from repro.harness.parallel import Cell, _execute, cell_worker


@cell_worker("nq_echo")
def _nq_echo(x):
    return {"v": float(x), "curve": {1: x / 2}, "key": (x,)}


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------

class TestFraming:
    def test_round_trip(self):
        a, b = socket.socketpair()
        try:
            payload = {"op": "cell", "id": 7, "args": [1.5, "x", [2, 3]]}
            send_frame(a, payload)
            assert recv_frame(b) == payload
        finally:
            a.close(); b.close()

    def test_clean_eof_is_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_mid_frame_close_raises(self):
        # A peer dying between the header and the end of the body is
        # torn input, never a clean goodbye.
        a, b = socket.socketpair()
        try:
            a.sendall(b"\x00\x00\x00\x10partial")
            a.close()
            with pytest.raises(ConnectionError, match="7 of 16 byte"):
                recv_frame(b)
        finally:
            b.close()

    def test_truncated_length_prefix_raises(self):
        # Torn even earlier: EOF inside the 4-byte length prefix itself.
        # This must raise, not masquerade as a clean end-of-stream —
        # a coordinator that treated it as EOF would silently drop a
        # worker's final result.
        a, b = socket.socketpair()
        try:
            a.sendall(b"\x00\x00")
            a.close()
            with pytest.raises(ConnectionError, match="2 of 4 byte"):
                recv_frame(b)
        finally:
            b.close()

    def test_non_object_payload_rejected(self):
        a, b = socket.socketpair()
        try:
            body = b'[1, 2, 3]'
            a.sendall(len(body).to_bytes(4, "big") + body)
            with pytest.raises(ConnectionError, match="malformed"):
                recv_frame(b)
        finally:
            a.close(); b.close()

    def test_oversized_frame_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall(b"\xff\xff\xff\xff")
            with pytest.raises(ConnectionError, match="oversized"):
                recv_frame(b)
        finally:
            a.close(); b.close()


# ---------------------------------------------------------------------------
# Error transport
# ---------------------------------------------------------------------------

class TestErrorTransport:
    def test_config_error_survives_as_config_error(self):
        # A remote ConfigError is fatal locally too — the supervisor
        # must not retry a misconfigured cell on another worker.
        back = _decode_error(_encode_error(ConfigError("bad cell")))
        assert isinstance(back, ConfigError) and "bad cell" in str(back)

    def test_repro_error_is_deterministic_remote_failure(self):
        back = _decode_error(_encode_error(ReproError("model blew up")))
        assert isinstance(back, RemoteCellError)
        assert isinstance(back, ReproError)  # no-retry classification
        assert "model blew up" in str(back)

    def test_generic_exception_is_retryable(self):
        back = _decode_error(_encode_error(ValueError("flaky thing")))
        assert isinstance(back, RemoteWorkerFailure)
        assert not isinstance(back, ReproError)  # supervisor may retry
        assert "ValueError" in str(back) and "flaky thing" in str(back)


# ---------------------------------------------------------------------------
# Coordinator vs in-process fake workers
# ---------------------------------------------------------------------------

class FakeWorker:
    """A protocol-speaking worker the test controls frame by frame."""

    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=5.0)
        send_frame(self.sock, {"op": "hello", "pid": 0, "host": "fake"})
        welcome = recv_frame(self.sock)
        assert welcome and welcome["op"] == "welcome"
        assert welcome["version"] == PROTOCOL_VERSION
        send_frame(self.sock, {"op": "ready"})

    def next_cell(self, timeout=15.0):
        self.sock.settimeout(timeout)
        frame = recv_frame(self.sock)
        assert frame and frame["op"] == "cell"
        return frame

    def reply(self, cell_id, value):
        send_frame(self.sock, {"op": "result", "id": cell_id, "ok": True,
                               "value": encode_value(value)})

    def fail(self, cell_id, exc):
        send_frame(self.sock, {"op": "result", "id": cell_id, "ok": False,
                               "error": _encode_error(exc)})

    def die(self):
        self.sock.close()


@pytest.fixture
def queue():
    ex = WorkQueueExecutor(spawn=0)
    yield ex
    ex.shutdown(kill=True)


class TestCoordinator:
    def test_typed_values_round_trip(self, queue):
        worker = FakeWorker(queue.port)
        fut = queue.submit(Cell((4,), "nq_echo", (4,)))
        frame = worker.next_cell()
        assert frame["worker"] == "nq_echo"
        worker.reply(frame["id"], _execute(Cell((4,), "nq_echo", (4,))))
        value = fut.result(timeout=15)
        # Journal typed encoding carries exact types across the wire.
        assert value == {"v": 4.0, "curve": {1: 2.0}, "key": (4,)}
        assert isinstance(value["key"], tuple)
        assert all(isinstance(k, int) for k in value["curve"])

    def test_dead_worker_lease_requeues(self, queue):
        first = FakeWorker(queue.port)
        fut = queue.submit(Cell((5,), "nq_echo", (5,)))
        frame = first.next_cell()
        first.die()  # vanishes mid-cell, result never sent
        second = FakeWorker(queue.port)
        again = second.next_cell()
        assert again["worker"] == frame["worker"]
        second.reply(again["id"], {"v": 5.0})
        assert fut.result(timeout=15) == {"v": 5.0}
        assert queue.requeued == 1
        assert "1 lease(s) re-queued" in queue.banner()

    def test_silent_worker_lease_expires(self):
        ex = WorkQueueExecutor(spawn=0, lease_timeout=1.0)
        try:
            stalled = FakeWorker(ex.port)
            fut = ex.submit(Cell((6,), "nq_echo", (6,)))
            stalled.next_cell()  # lease it, then never reply or heartbeat
            rescuer = FakeWorker(ex.port)
            frame = rescuer.next_cell(timeout=30.0)
            rescuer.reply(frame["id"], {"v": 6.0})
            assert fut.result(timeout=15) == {"v": 6.0}
            assert ex.requeued == 1
        finally:
            ex.shutdown(kill=True)

    def test_remote_errors_reach_the_future(self, queue):
        worker = FakeWorker(queue.port)
        fut = queue.submit(Cell((7,), "nq_echo", (7,)))
        frame = worker.next_cell()
        worker.fail(frame["id"], ValueError("remote boom"))
        exc = fut.exception(timeout=15)
        assert isinstance(exc, RemoteWorkerFailure)
        assert "remote boom" in str(exc)

    def test_shutdown_fails_pending_and_refuses_submits(self, queue):
        fut = queue.submit(Cell((8,), "nq_echo", (8,)))  # no worker attached
        queue.shutdown()
        assert isinstance(fut.exception(timeout=15), WorkerLostError)
        with pytest.raises(RuntimeError, match="shut-down"):
            queue.submit(Cell((9,), "nq_echo", (9,)))

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigError, match="spawn"):
            WorkQueueExecutor(spawn=-1)
        with pytest.raises(ConfigError, match="lease_timeout"):
            WorkQueueExecutor(lease_timeout=0)


# ---------------------------------------------------------------------------
# Worker loop vs a fake coordinator
# ---------------------------------------------------------------------------

class FakeCoordinator:
    def __init__(self, version=PROTOCOL_VERSION):
        self.listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(1)
        self.port = self.listener.getsockname()[1]
        self.version = version
        self.sock = None

    def accept(self):
        self.sock, _ = self.listener.accept()
        self.sock.settimeout(15.0)
        hello = recv_frame(self.sock)
        assert hello and hello["op"] == "hello"
        send_frame(self.sock, {"op": "welcome", "version": self.version})
        ready = self._next(("ready",))
        assert ready["op"] == "ready"

    def _next(self, ops):
        while True:
            frame = recv_frame(self.sock)
            assert frame is not None
            if frame["op"] in ops:
                return frame

    def close(self):
        if self.sock is not None:
            self.sock.close()
        self.listener.close()


@pytest.fixture
def not_a_pool_worker():
    """run_worker marks the process as a pool worker; undo after."""
    from repro.harness import parallel

    yield
    parallel._IS_POOL_WORKER = False


class TestWorkerLoop:
    def test_serves_cells_until_bye(self, not_a_pool_worker):
        coord = FakeCoordinator()
        rc = []
        t = threading.Thread(
            target=lambda: rc.append(run_worker("127.0.0.1", coord.port))
        )
        t.start()
        try:
            coord.accept()
            send_frame(coord.sock, {"op": "cell", "id": 0, "worker": "nq_echo",
                                    "args": encode_value([3])})
            result = coord._next(("result",))
            assert result["ok"] and result["id"] == 0
            # Unknown worker comes back as a structured config error.
            send_frame(coord.sock, {"op": "cell", "id": 1,
                                    "worker": "no_such_worker",
                                    "args": encode_value([])})
            error = coord._next(("result",))
            assert not error["ok"] and error["error"]["config"]
            send_frame(coord.sock, {"op": "bye"})
            t.join(timeout=15)
            assert rc == [0]
        finally:
            coord.close()
            t.join(timeout=15)

    def test_version_mismatch_refused(self, not_a_pool_worker):
        coord = FakeCoordinator(version=PROTOCOL_VERSION + 1)
        errors = []

        def _run():
            try:
                run_worker("127.0.0.1", coord.port)
            except ConfigError as exc:
                errors.append(str(exc))

        t = threading.Thread(target=_run)
        t.start()
        try:
            coord.sock, _ = coord.listener.accept()
            coord.sock.settimeout(15.0)
            assert recv_frame(coord.sock)["op"] == "hello"
            send_frame(coord.sock, {"op": "welcome", "version": coord.version})
            t.join(timeout=15)
            assert errors and "protocol" in errors[0]
        finally:
            coord.close()
            t.join(timeout=15)

    def test_refused_connection_is_config_error(self):
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nothing listens here now
        with pytest.raises(ConfigError, match="cannot connect"):
            run_worker("127.0.0.1", port)

    def test_cli_rejects_bad_connect(self, capsys):
        assert main(["worker", "--connect", "no-port-here"]) == 1
        assert "HOST:PORT" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# End to end through real spawned workers
# ---------------------------------------------------------------------------

class TestSpawnedWorkers:
    def test_sweep_matches_inline(self):
        cells = [Cell((i,), "bench_cell", (i, 8)) for i in range(12)]
        expected = {c.key: _execute(c) for c in cells}
        with make_executor("tcp:127.0.0.1:0,spawn=2") as ex:
            futures = ex.submit_many(cells)
            got = {c.key: f.result(timeout=120) for c, f in zip(cells, futures)}
            assert ex.workers_seen >= 1
        assert got == expected

    def test_all_spawned_workers_dead_fails_fast(self, monkeypatch, tmp_path):
        # One spawned worker, chaos-killed mid-cell: with the whole
        # fleet gone the queue must fail pending cells, not hang.
        monkeypatch.setenv("REPRO_CHAOS_KILL", str(tmp_path / "chaos.marker"))
        ex = WorkQueueExecutor(spawn=1)
        try:
            fut = ex.submit(Cell((0,), "bench_cell", (0, 8)))
            exc = fut.exception(timeout=120)
            assert isinstance(exc, WorkerLostError)
            assert "no workers left" in str(exc)
        finally:
            ex.shutdown(kill=True)
