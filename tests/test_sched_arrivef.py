"""Tests for the batch scheduler, cloudburst policy and ARRIVE-F."""

import pytest

from repro.arrivef import (
    ArriveF,
    FarmJob,
    MigrationModel,
    OnlineProfile,
    PlatformPredictor,
    profile_from_monitor,
)
from repro.arrivef.framework import throughput_experiment
from repro.cloud.pricing import SpotMarket
from repro.errors import ConfigError, SchedulerError
from repro.platforms import DCC, EC2, VAYU
from repro.sched import (
    AnupbsScheduler,
    CloudBurstPolicy,
    Job,
    JobProfile,
    JobState,
)


def make_job(job_id, cores=8, runtime=1000.0, submit=0.0, priority=0, **profile):
    return Job(job_id, "user", cores, runtime, submit, priority=priority,
               profile=JobProfile(**profile))


class TestAnupbsScheduler:
    def test_fifo_on_saturated_machine(self):
        sched = AnupbsScheduler(8)
        a, b = make_job(1, cores=8), make_job(2, cores=8)
        sched.submit(a)
        sched.submit(b)
        sched.run_until_drained()
        assert a.start_time == 0.0
        assert b.start_time == pytest.approx(1000.0)
        assert sched.metrics().jobs_completed == 2

    def test_parallel_when_capacity_allows(self):
        sched = AnupbsScheduler(16)
        a, b = make_job(1), make_job(2)
        sched.submit(a)
        sched.submit(b)
        sched.run_until_drained()
        assert a.start_time == b.start_time == 0.0

    def test_suspend_resume_preemption(self):
        sched = AnupbsScheduler(8)
        low = make_job(1, cores=8, runtime=1000.0)
        high = make_job(2, cores=8, runtime=100.0, submit=10.0, priority=5)
        sched.submit(low)
        sched.submit(high)
        sched.run_until_drained()
        assert high.start_time == pytest.approx(10.0)  # preempted low
        assert low.suspend_count == 1
        assert low.finish_time == pytest.approx(1100.0)  # paused 10..110

    def test_no_preemption_when_disabled(self):
        sched = AnupbsScheduler(8, suspend_resume=False)
        low = make_job(1, cores=8, runtime=1000.0)
        high = make_job(2, cores=8, runtime=100.0, submit=10.0, priority=5)
        sched.submit(low)
        sched.submit(high)
        sched.run_until_drained()
        assert high.start_time == pytest.approx(1000.0)
        assert low.suspend_count == 0

    def test_oversized_job_rejected_at_submit(self):
        sched = AnupbsScheduler(8)
        with pytest.raises(SchedulerError):
            sched.submit(make_job(1, cores=16))

    def test_utilisation_accounting(self):
        sched = AnupbsScheduler(10)
        sched.submit(make_job(1, cores=5, runtime=100.0))
        sched.run_until_drained()
        assert sched.metrics().utilisation == pytest.approx(0.5)

    def test_past_submission_rejected(self):
        sched = AnupbsScheduler(8)
        sched.submit(make_job(1, submit=100.0))
        with pytest.raises(SchedulerError):
            sched.submit(make_job(2, submit=50.0))

    def test_metrics_require_completions(self):
        with pytest.raises(SchedulerError):
            AnupbsScheduler(8).metrics()


class TestCloudBurstPolicy:
    def _saturated(self):
        sched = AnupbsScheduler(8)
        sched.submit(make_job(1, cores=8, runtime=50000.0))
        return sched

    def test_short_queue_stays_local(self):
        sched = AnupbsScheduler(64)
        job = make_job(2, cores=8)
        sched.submit(job)
        # job started instantly; queued_wait estimate is 0 for a fresh one
        waiting = make_job(3, cores=64, submit=0.0)
        sched.submit(waiting)
        policy = CloudBurstPolicy(wait_threshold=1e9)
        decision = policy.evaluate(sched, waiting)
        assert not decision.burst
        assert "acceptable" in decision.reason

    def test_comm_bound_jobs_refused(self):
        sched = self._saturated()
        job = make_job(2, comm_fraction=0.6)
        sched.submit(job)
        decision = CloudBurstPolicy(wait_threshold=1.0).evaluate(sched, job)
        assert not decision.burst and "communication-bound" in decision.reason

    def test_latency_sensitive_jobs_refused(self):
        sched = self._saturated()
        job = make_job(2, comm_fraction=0.2, msg_small_fraction=0.9)
        sched.submit(job)
        decision = CloudBurstPolicy(wait_threshold=1.0).evaluate(sched, job)
        assert not decision.burst and "latency-sensitive" in decision.reason

    def test_suitable_job_bursts_with_cost(self):
        sched = self._saturated()
        job = make_job(2, cores=8, runtime=7200.0, comm_fraction=0.05)
        sched.submit(job)
        policy = CloudBurstPolicy(wait_threshold=1.0)
        decision = policy.evaluate(sched, job)
        assert decision.burst
        assert decision.predicted_cost_usd > 0
        assert policy.nodes_for(make_job(9, cores=32)) == 2

    def test_apply_removes_from_queue(self):
        sched = self._saturated()
        job = make_job(2, cores=8, runtime=7200.0, comm_fraction=0.05)
        sched.submit(job)
        decisions = CloudBurstPolicy(wait_threshold=1.0).apply(sched, [job])
        assert decisions[0].burst
        assert job.state is JobState.BURSTED
        assert job not in sched.queue

    def test_spot_used_when_cheap(self):
        sched = self._saturated()
        job = make_job(2, cores=8, runtime=7200.0, comm_fraction=0.05)
        sched.submit(job)
        market = SpotMarket(seed=4, anchor_fraction=0.2, volatility=0.0)
        policy = CloudBurstPolicy(wait_threshold=1.0, spot_market=market)
        decision = policy.evaluate(sched, job)
        assert decision.burst and decision.use_spot


class TestPredictor:
    def test_compute_bound_tracks_clock_ratio(self):
        profile = OnlineProfile(comm_fraction=0.0, small_msg_fraction=0.0,
                                mem_boundedness=0.0, mean_msg_bytes=0.0)
        predictor = PlatformPredictor(VAYU)
        slowdown = predictor.slowdown(profile, DCC)
        clock_ratio = (2.93e9 * 1.10) / (2.27e9 * 1.00)
        assert slowdown == pytest.approx(clock_ratio, rel=0.01)

    def test_latency_bound_penalised_on_clouds(self):
        profile = OnlineProfile(comm_fraction=0.6, small_msg_fraction=1.0,
                                mem_boundedness=0.2, mean_msg_bytes=8.0)
        predictor = PlatformPredictor(VAYU)
        assert predictor.slowdown(profile, DCC) > 10.0

    def test_best_platform_selection(self):
        predictor = PlatformPredictor(VAYU)
        comm_heavy = OnlineProfile(comm_fraction=0.5, small_msg_fraction=0.9,
                                   mem_boundedness=0.3, mean_msg_bytes=8.0)
        best, _ = predictor.best_platform(comm_heavy, [DCC, VAYU, EC2])
        assert best.name == "Vayu"

    def test_prediction_scales_reference_runtime(self):
        profile = OnlineProfile(comm_fraction=0.1, small_msg_fraction=0.5,
                                mem_boundedness=0.3, mean_msg_bytes=1024.0)
        predictor = PlatformPredictor(VAYU)
        assert predictor.predict(profile, 100.0, DCC) == pytest.approx(
            100.0 * predictor.slowdown(profile, DCC)
        )

    def test_profile_from_monitor(self):
        from repro.npb import get_benchmark

        r = get_benchmark("cg").run(DCC, 8, seed=1)
        profile = profile_from_monitor(r.monitor, "steady", mem_boundedness=0.8)
        assert 0.0 < profile.comm_fraction < 1.0
        assert profile.mean_msg_bytes > 0


class TestMigration:
    def test_total_exceeds_single_copy(self):
        model = MigrationModel()
        mem = 8e9
        assert model.total_seconds(mem) > mem / model.link_bw

    def test_downtime_much_smaller_than_total(self):
        model = MigrationModel()
        assert model.downtime_seconds(8e9) < 0.05 * model.total_seconds(8e9)

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            MigrationModel(dirty_rate=1.5)


class TestArriveF:
    def _profile(self, comm=0.1, small=0.5):
        return OnlineProfile(comm_fraction=comm, small_msg_fraction=small,
                             mem_boundedness=0.3, mean_msg_bytes=1024.0)

    def test_relocation_picks_better_platform(self):
        farm = ArriveF([(DCC, 32), (VAYU, 32)], reference=VAYU, relocation=True)
        job = FarmJob(1, 16, 3600.0, 0.0, self._profile(comm=0.5, small=0.9))
        done = farm.run([job])
        assert done[0].platform_name == "Vayu"

    def test_naive_takes_first_fit(self):
        farm = ArriveF([(DCC, 32), (VAYU, 32)], reference=VAYU, relocation=False)
        job = FarmJob(1, 16, 3600.0, 0.0, self._profile(comm=0.5, small=0.9))
        done = farm.run([job])
        assert done[0].platform_name == "DCC"

    def test_throughput_experiment_improves_waits(self):
        best = max(
            throughput_experiment(seed=s)["wait_improvement_pct"] for s in range(4)
        )
        assert best > 5.0

    def test_all_jobs_finish(self):
        results = throughput_experiment(n_jobs=30, seed=1)
        assert results["mean_turnaround_naive"] > 0
        assert results["mean_turnaround_arrivef"] > 0
