"""Tests for the networked cell store and its graceful degradation.

Covers the tentpole guarantees of the resilience PR: a TCP store
server that validates everything it is sent, a client whose sweeps
stay byte-identical whether the server is healthy, dead, or flapping
(offline spool + drain-on-reconnect), breaker-bounded failure costs,
server-side leases that cannot outlive their connection, and the
seeded chaos proxy that makes all of it testable on demand.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.cli import main
from repro.errors import CircuitOpenError, ConfigError, StoreUnavailableError
from repro.faults.netchaos import ChaosProxy, parse_chaos_spec
from repro.harness.cellstore import (
    MISS,
    CellStore,
    active_store,
    resolve_store,
    store_scope,
)
from repro.harness.netstore import (
    CellStoreServer,
    RemoteCellStore,
    default_spool_root,
    parse_endpoint,
)
from repro.harness.parallel import Cell, cell_worker, run_cells
from repro.harness.resilience import CircuitBreaker, RetryPolicy

#: Inline executions of the counting test worker (jobs=1 runs in-process).
_CALLS: list[tuple] = []


@cell_worker("ns_count")
def _ns_count(x):
    """Counting worker: records every execution, returns typed payloads."""
    _CALLS.append(("ns_count", x))
    return {"v": float(x * x), "curve": {1: x / 2}, "key": (x,)}


@pytest.fixture
def fake_fingerprints(monkeypatch):
    """Give the test-local ``ns_*`` workers controllable code identities."""
    import repro.analysis.static as static

    fingerprints = {"ns_count": "aa" * 16}
    real = static.worker_fingerprint
    monkeypatch.setattr(
        static, "worker_fingerprint",
        lambda worker: fingerprints.get(worker, real(worker)),
    )
    return fingerprints


#: A retry policy that fails fast in tests (no real sleeping).
FAST = RetryPolicy(attempts=2, base_delay=0.0, max_delay=0.0, jitter=0.0,
                   deadline=2.0)


def _client(port: int, spool, **kwargs) -> RemoteCellStore:
    kwargs.setdefault("policy", FAST)
    kwargs.setdefault("sleep", lambda s: None)
    return RemoteCellStore(f"tcp://127.0.0.1:{port}", spool_root=spool,
                           **kwargs)


@pytest.fixture
def server(tmp_path):
    srv = CellStoreServer(tmp_path / "served").start()
    yield srv
    srv.stop()


# ---------------------------------------------------------------------------
# Endpoint / spool plumbing
# ---------------------------------------------------------------------------

class TestEndpoint:
    def test_parse_endpoint(self):
        assert parse_endpoint("tcp://127.0.0.1:7777") == ("127.0.0.1", 7777)
        assert parse_endpoint("host.example:0") == ("host.example", 0)

    @pytest.mark.parametrize("bad", ["tcp://", "tcp://host", "tcp://host:x",
                                     "tcp://:7777", "tcp://h:99999"])
    def test_parse_endpoint_rejects(self, bad):
        with pytest.raises(ConfigError):
            parse_endpoint(bad)

    def test_default_spool_root_is_per_endpoint(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE_SPOOL", raising=False)
        a = default_spool_root("h1", 1)
        assert a == default_spool_root("h1", 1)  # deterministic: crash
        assert a != default_spool_root("h1", 2)  # recovery needs reuse
        monkeypatch.setenv("REPRO_STORE_SPOOL", "/x/spool")
        assert default_spool_root("h1", 1) == "/x/spool"

    def test_resolve_store_picks_the_client(self, tmp_path, server):
        remote = resolve_store(f"tcp://127.0.0.1:{server.port}")
        assert isinstance(remote, RemoteCellStore)
        remote.close()
        local = resolve_store(tmp_path / "local")
        assert isinstance(local, CellStore)
        assert not isinstance(local, RemoteCellStore)

    def test_store_scope_resolves_and_closes(self, tmp_path, server,
                                             monkeypatch):
        monkeypatch.setenv("REPRO_STORE_SPOOL", str(tmp_path / "spool"))
        with store_scope(f"tcp://127.0.0.1:{server.port}") as cs:
            assert isinstance(cs, RemoteCellStore)
            assert active_store() is cs
        assert cs._closed  # the scope owns (and closes) resolved stores


# ---------------------------------------------------------------------------
# Healthy-server round trips
# ---------------------------------------------------------------------------

class TestRoundTrip:
    def test_lookup_publish_lookup(self, tmp_path, server, fake_fingerprints):
        c = _client(server.port, tmp_path / "spool")
        result = {"v": 2.5, "curve": {1: 0.5}, "key": ("x", 3)}
        assert c.lookup("ns_count", (3,)) is MISS
        assert c.publish("ns_count", (3,), result)
        value = c.lookup("ns_count", (3,))
        assert value == result
        # The journal's typed encoding survives the wire round trip.
        assert all(isinstance(k, int) for k in value["curve"])
        assert isinstance(value["key"], tuple)
        c.close()
        assert "1 served, 1 executed, 1 published" in c.banner()

    def test_second_client_sees_the_publish(self, tmp_path, server,
                                            fake_fingerprints):
        a = _client(server.port, tmp_path / "spool-a")
        b = _client(server.port, tmp_path / "spool-b")
        a.publish("ns_count", (4,), {"v": 16.0})
        assert b.lookup("ns_count", (4,)) == {"v": 16.0}
        a.close()
        b.close()

    def test_server_rejects_tampered_records(self, tmp_path, server,
                                             fake_fingerprints):
        from repro.harness.cellstore import build_record
        from repro.harness.journal import encode_value

        c = _client(server.port, tmp_path / "spool")
        rec = build_record("ns_count", (5,), {"v": 25.0})
        rec["args"] = encode_value((999,))  # forged args: stale address
        resp = c._call({"op": "publish", "record": rec})
        assert resp["op"] == "reject"
        assert "re-derive" in resp["problem"]
        assert c.lookup("ns_count", (5,)) is MISS  # nothing was planted
        assert c.lookup("ns_count", (999,)) is MISS
        c.close()

    def test_unknown_op_is_an_error_and_the_server_survives(
        self, tmp_path, server
    ):
        c = _client(server.port, tmp_path / "spool")
        with pytest.raises(ConfigError, match="unknown op"):
            c._call({"op": "frobnicate"})
        assert c.ping()["op"] == "pong"  # same server, still alive
        c.close()

    def test_uncacheable_worker_bypasses_the_wire(self, tmp_path, server):
        c = _client(server.port, tmp_path / "spool")
        assert c.lookup("no_such_worker_anywhere", (1,)) is MISS
        assert not c.publish("no_such_worker_anywhere", (1,), 3.0)
        assert c.try_lease("no_such_worker_anywhere", (1,)) is True
        c.close()


# ---------------------------------------------------------------------------
# Server-side leases
# ---------------------------------------------------------------------------

class TestServerLeases:
    def test_plan_grants_one_winner_and_defers_the_loser(
        self, tmp_path, server, fake_fingerprints
    ):
        a = _client(server.port, tmp_path / "spool-a")
        b = _client(server.port, tmp_path / "spool-b")
        cells = [Cell((x,), "ns_count", (x,)) for x in (1, 2)]
        plan_a = a.plan_cells(cells)
        assert [c.key for c in plan_a.to_run] == [(1,), (2,)]
        plan_b = b.plan_cells(cells)
        assert plan_b.to_run == []  # a holds both leases
        assert [c.key for c in plan_b.deferred] == [(1,), (2,)]
        # a publishes; b's await_peer turns the deferral into a hit.
        a.publish("ns_count", (1,), {"v": 1.0})
        assert b.await_peer("ns_count", (1,), poll=0.01) == {"v": 1.0}
        assert b.peer_waits == 1
        a.close()
        b.close()

    def test_disconnect_releases_leases(self, tmp_path, server,
                                        fake_fingerprints):
        a = _client(server.port, tmp_path / "spool-a")
        b = _client(server.port, tmp_path / "spool-b")
        assert a.try_lease("ns_count", (9,)) is True
        assert b.try_lease("ns_count", (9,)) is False
        a.close()  # connection drop reclaims a's leases server-side
        deadline = time.monotonic() + 2.0  # lint-ok: DET001 test timeout only
        while not b.try_lease("ns_count", (9,)):
            assert time.monotonic() < deadline  # lint-ok: DET001 test timeout only
            time.sleep(0.01)
        b.close()

    def test_expired_lease_is_taken_over(self, tmp_path, fake_fingerprints):
        clock = [0.0]
        srv = CellStoreServer(tmp_path / "served", lease_ttl=10.0,
                              clock=lambda: clock[0]).start()
        try:
            a = _client(srv.port, tmp_path / "spool-a")
            b = _client(srv.port, tmp_path / "spool-b")
            assert a.try_lease("ns_count", (1,)) is True
            assert b.try_lease("ns_count", (1,)) is False
            clock[0] = 11.0  # a's lease is now past the TTL: orphaned
            assert b.try_lease("ns_count", (1,)) is True
            a.close()
            b.close()
        finally:
            srv.stop()

    def test_release_makes_the_cell_claimable(self, tmp_path, server,
                                              fake_fingerprints):
        a = _client(server.port, tmp_path / "spool-a")
        b = _client(server.port, tmp_path / "spool-b")
        assert a.try_lease("ns_count", (7,)) is True
        a.release_leases()
        assert b.try_lease("ns_count", (7,)) is True
        a.close()
        b.close()


# ---------------------------------------------------------------------------
# Degradation: outage -> spool -> reconnect -> drain
# ---------------------------------------------------------------------------

class TestDegradation:
    def test_outage_spools_and_restart_drains(self, tmp_path,
                                              fake_fingerprints):
        root = tmp_path / "served"
        srv = CellStoreServer(root).start()
        port = srv.port
        c = _client(port, tmp_path / "spool",
                    breaker=CircuitBreaker("t", threshold=100))
        c.publish("ns_count", (1,), {"v": 1.0})
        srv.stop()

        # Down: lookups miss, leases grant, publishes spool — the sweep
        # itself never sees an exception.
        assert c.lookup("ns_count", (2,)) is MISS
        assert c.try_lease("ns_count", (2,)) is True
        assert c.publish("ns_count", (2,), {"v": 4.0})
        assert c.pending == 1 and c.spooled == 1
        assert c.degraded_intervals == 1
        # The spooled result is servable locally in the meantime.
        assert c.lookup("ns_count", (2,)) == {"v": 4.0}

        # Restart on the same port: the next successful call drains.
        srv2 = CellStoreServer(root, port=port).start()
        try:
            assert c.ping()["op"] == "pong"
            assert c.pending == 0
            assert c.drained == 1
            assert "0 pending" in c.banner()
            # The drained record now serves any client straight from disk.
            assert CellStore(root).lookup("ns_count", (2,)) == {"v": 4.0}
        finally:
            c.close()
            srv2.stop()

    def test_close_drains_patiently(self, tmp_path, fake_fingerprints):
        root = tmp_path / "served"
        srv = CellStoreServer(root).start()
        port = srv.port
        c = _client(port, tmp_path / "spool")
        c.ping()
        srv.stop()
        assert c.publish("ns_count", (3,), {"v": 9.0})
        assert c.pending == 1
        srv2 = CellStoreServer(root, port=port).start()
        try:
            c.close()  # the final drain reconnects and flushes the spool
            assert c.pending == 0
            assert "0 pending" in c.banner()
            assert CellStore(root).lookup("ns_count", (3,)) == {"v": 9.0}
        finally:
            srv2.stop()

    def test_crashed_run_spool_drains_in_the_next_run(self, tmp_path,
                                                      fake_fingerprints):
        root = tmp_path / "served"
        spool = tmp_path / "spool"
        srv = CellStoreServer(root).start()
        port = srv.port
        srv.stop()
        # Run 1 "crashes": it spooled a result and never drained.
        c1 = _client(port, spool)
        c1.publish("ns_count", (4,), {"v": 16.0})
        assert c1.pending == 1
        del c1  # no close(): simulated crash
        # Run 2 against the same endpoint inherits the spool and drains.
        srv2 = CellStoreServer(root, port=port).start()
        try:
            c2 = _client(port, spool)
            assert c2.pending == 1  # counted from disk at startup
            c2.ping()
            assert c2.pending == 0
            assert CellStore(root).lookup("ns_count", (4,)) == {"v": 16.0}
            c2.close()
        finally:
            srv2.stop()

    def test_breaker_opens_and_refuses_fast(self, tmp_path,
                                            fake_fingerprints):
        srv = CellStoreServer(tmp_path / "served").start()
        port = srv.port
        srv.stop()
        breaker = CircuitBreaker("t", threshold=4, cooldown=3600.0)
        c = _client(port, tmp_path / "spool", breaker=breaker)
        assert c.lookup("ns_count", (1,)) is MISS  # 2 attempts -> 2 failures
        assert c.lookup("ns_count", (2,)) is MISS  # 2 more: breaker opens
        assert breaker.state == "open"
        with pytest.raises(StoreUnavailableError) as err:
            c._call({"op": "ping"})
        # Instant refusal: the breaker short-circuited, no socket I/O.
        assert isinstance(err.value.__cause__, CircuitOpenError)
        # Degradation still holds under the open breaker.
        assert c.lookup("ns_count", (3,)) is MISS
        assert c.publish("ns_count", (3,), {"v": 9.0})
        assert c.pending == 1
        assert "breaker opened" in c.banner()

    def test_plan_degrades_to_run_everything_locally(self, tmp_path,
                                                     fake_fingerprints):
        srv = CellStoreServer(tmp_path / "served").start()
        port = srv.port
        srv.stop()
        c = _client(port, tmp_path / "spool")
        cells = [Cell((x,), "ns_count", (x,)) for x in (1, 2, 3)]
        plan = c.plan_cells(cells)
        assert [x.key for x in plan.to_run] == [(1,), (2,), (3,)]
        assert plan.served == {} and plan.deferred == []


# ---------------------------------------------------------------------------
# Sweeps through the real harness
# ---------------------------------------------------------------------------

class TestSweepIntegration:
    def test_warm_remote_store_serves_a_sweep_with_zero_executed(
        self, tmp_path, server, fake_fingerprints, monkeypatch
    ):
        monkeypatch.setenv("REPRO_STORE_SPOOL", str(tmp_path / "spool"))
        cells = [Cell((x,), "ns_count", (x,)) for x in range(4)]
        endpoint = f"tcp://127.0.0.1:{server.port}"
        _CALLS.clear()
        with store_scope(endpoint) as cold:
            first = run_cells(cells, jobs=1)
        assert len(_CALLS) == 4
        assert "4 executed, 4 published" in cold.banner()
        _CALLS.clear()
        with store_scope(endpoint) as warm:
            second = run_cells(cells, jobs=1)
        assert _CALLS == []  # every cell served over the wire
        assert second == first
        assert "0 executed, 0 published" in warm.banner()
        assert "0 pending" in warm.banner()

    def test_sweep_with_dead_server_matches_no_store_run(
        self, tmp_path, fake_fingerprints, monkeypatch
    ):
        monkeypatch.setenv("REPRO_STORE_SPOOL", str(tmp_path / "spool"))
        srv = CellStoreServer(tmp_path / "served").start()
        port = srv.port
        srv.stop()
        cells = [Cell((x,), "ns_count", (x,)) for x in range(3)]
        baseline = run_cells(cells, jobs=1)
        client = _client(port, tmp_path / "spool")
        with store_scope(client):
            degraded = run_cells(cells, jobs=1)
        assert degraded == baseline  # byte-identical results, no store
        assert client.pending == 3  # every publish spooled
        client.close()


# ---------------------------------------------------------------------------
# Chaos proxy
# ---------------------------------------------------------------------------

class TestChaosProxy:
    def test_parse_chaos_spec(self):
        spec = parse_chaos_spec("drop:p=0.1;delay:p=0.2,ms=50;sever")
        assert spec["drop"] == {"p": 0.1}
        assert spec["delay"] == {"p": 0.2, "ms": 50.0}
        assert spec["sever"] == {"p": 1.0}  # bare rule: always fires
        assert parse_chaos_spec("") == {}

    @pytest.mark.parametrize("bad", ["jitter:p=0.1", "drop:p=2", "drop:q=1",
                                     "delay:p=0.1,ms=-5", "drop:p=x"])
    def test_parse_chaos_spec_rejects(self, bad):
        with pytest.raises(ConfigError):
            parse_chaos_spec(bad)

    def test_pass_through_proxy_is_invisible(self, tmp_path, server,
                                             fake_fingerprints):
        proxy = ChaosProxy("127.0.0.1", 0, "127.0.0.1", server.port).start()
        try:
            c = _client(proxy.port, tmp_path / "spool")
            assert c.publish("ns_count", (1,), {"v": 1.0})
            assert c.lookup("ns_count", (1,)) == {"v": 1.0}
            assert c.pending == 0
            c.close()
        finally:
            proxy.stop()

    def test_decisions_are_seeded_and_deterministic(self):
        spec = "drop:p=0.3;sever:p=0.1"

        def sequence(proxy, conn_index):
            rng = proxy._rng(conn_index)
            return [proxy._decide(rng)[0] for _ in range(200)]

        a = ChaosProxy("127.0.0.1", 0, "127.0.0.1", 1, spec=spec, seed=42)
        b = ChaosProxy("127.0.0.1", 0, "127.0.0.1", 1, spec=spec, seed=42)
        other = ChaosProxy("127.0.0.1", 0, "127.0.0.1", 1, spec=spec, seed=43)
        # Same seed -> the exact same fault schedule (this is what makes
        # the CI chaos guard reproducible); a different seed or a
        # different connection index moves it.
        assert sequence(a, 0) == sequence(b, 0)
        assert sequence(a, 0) != sequence(a, 1)
        assert sequence(a, 0) != sequence(other, 0)
        assert "drop" in sequence(a, 0)  # p=0.3 over 200 draws fires

    def test_severing_proxy_degrades_the_client_boundedly(
        self, tmp_path, server, fake_fingerprints
    ):
        proxy = ChaosProxy("127.0.0.1", 0, "127.0.0.1", server.port,
                           spec="sever:p=0.5", seed=3).start()
        try:
            c = _client(proxy.port, tmp_path / "spool",
                        breaker=CircuitBreaker("t", threshold=1000))
            for x in range(10):
                assert c.publish("ns_count", (x,), {"v": float(x)})
            # Every result landed somewhere durable — server or spool.
            # (Both is possible: a publish whose *ack* was severed gets
            # spooled even though the server kept it; content addressing
            # makes the re-send on drain collapse harmlessly.)
            served = CellStore(server.store.root)
            spool = CellStore(c.root)
            for x in range(10):
                durable = (served.lookup("ns_count", (x,)) is not MISS
                           or spool.lookup("ns_count", (x,)) is not MISS)
                assert durable, f"result {x} lost under chaos"
            assert proxy.counters()["severed"] > 0
            c.close()
        finally:
            proxy.stop()


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

class TestCli:
    def test_store_ping_and_stats_remote(self, tmp_path, server,
                                         fake_fingerprints, capsys,
                                         monkeypatch):
        monkeypatch.setenv("REPRO_STORE_SPOOL", str(tmp_path / "cli-spool"))
        c = _client(server.port, tmp_path / "spool")
        c.publish("ns_count", (1,), {"v": 1.0})
        c.close()
        endpoint = f"tcp://127.0.0.1:{server.port}"
        assert main(["store", "ping", endpoint]) == 0
        assert "[pong]" in capsys.readouterr().out
        assert main(["store", "stats", endpoint, "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["records"] == 1

    def test_store_maintenance_refuses_remote_endpoints(self, server):
        endpoint = f"tcp://127.0.0.1:{server.port}"
        for op in (["verify", endpoint], ["gc", endpoint],
                   ["export", endpoint], ["import", endpoint, "/tmp/x"]):
            assert main(["store", *op]) == 1

    def test_store_ping_dead_server_fails_cleanly(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.setenv("REPRO_STORE_SPOOL", str(tmp_path / "cli-spool"))
        srv = CellStoreServer(tmp_path / "s").start()
        port = srv.port
        srv.stop()
        assert main(["store", "ping", f"tcp://127.0.0.1:{port}"]) == 1
