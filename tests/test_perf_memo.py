"""Tests for the deterministic collective-cost cache (repro.perf.memo).

The cache contract is *exactness*: a hit must return bit-for-bit the
value a fresh evaluation would produce, and configurations that differ
in any cost-relevant way (platform fabric, rank/node mapping, algorithm,
message size) must occupy distinct keys.
"""

from __future__ import annotations

import pytest

from repro.npb import get_benchmark
from repro.perf import CollectiveMemo, clear_default_memo, default_memo, memo_stats
from repro.platforms import get_platform
from repro.smpi.collectives import algorithms as alg


def _ctx(platform: str = "vayu", p: int = 16, nnodes: int = 2, rpn: int = 8):
    spec = get_platform(platform)
    return alg.CollectiveContext(p=p, nnodes=nnodes, rpn=rpn, net=spec.fabric, shm=spec.shm)


class _Counting:
    """Wraps a cost function, counting evaluations."""

    def __init__(self, fn):
        self.fn = fn
        self.calls = 0

    def __call__(self, ctx, nbytes):
        self.calls += 1
        return self.fn(ctx, nbytes)


def test_hit_returns_exact_fresh_value():
    memo = CollectiveMemo()
    ctx = _ctx()
    fn = _Counting(alg.allreduce_time)
    first = memo.time("allreduce", ctx, 4096, fn)
    second = memo.time("allreduce", ctx, 4096, fn)
    assert fn.calls == 1, "second lookup must be served from the table"
    assert first == second == alg.allreduce_time(ctx, 4096)
    stats = memo.stats()
    assert (stats.hits, stats.misses, stats.entries) == (1, 1, 1)
    assert stats.hit_rate == 0.5


def test_platforms_never_collide():
    memo = CollectiveMemo()
    vayu, ec2 = _ctx("vayu"), _ctx("ec2")
    t_vayu = memo.time("allreduce", vayu, 4096, alg.allreduce_time)
    t_ec2 = memo.time("allreduce", ec2, 4096, alg.allreduce_time)
    assert len(memo) == 2
    assert t_vayu == alg.allreduce_time(vayu, 4096)
    assert t_ec2 == alg.allreduce_time(ec2, 4096)
    assert t_vayu != t_ec2, "vayu IB and EC2 ethernet must price differently"


def test_mappings_never_collide():
    memo = CollectiveMemo()
    packed = _ctx(nnodes=2, rpn=8)
    spread = _ctx(nnodes=4, rpn=4)
    memo.time("alltoall", packed, 65536, alg.alltoall_time)
    memo.time("alltoall", spread, 65536, alg.alltoall_time)
    assert len(memo) == 2, "distinct node mappings must occupy distinct keys"
    # Each hit serves its own mapping's fresh value, never the other's.
    t_packed = memo.time("alltoall", packed, 65536, alg.alltoall_time)
    t_spread = memo.time("alltoall", spread, 65536, alg.alltoall_time)
    assert memo.stats().hits == 2
    assert t_packed == alg.alltoall_time(packed, 65536)
    assert t_spread == alg.alltoall_time(spread, 65536)
    assert t_packed != t_spread, "node mapping changes inter-node traffic"


def test_algorithms_and_sizes_never_collide():
    memo = CollectiveMemo()
    ctx = _ctx()
    memo.time("allreduce", ctx, 4096, alg.allreduce_time)
    memo.time("bcast", ctx, 4096, alg.bcast_time)
    memo.time("allreduce", ctx, 8192, alg.allreduce_time)
    assert len(memo) == 3
    assert memo.stats().misses == 3


def test_disabled_memo_always_evaluates():
    memo = CollectiveMemo(enabled=False)
    ctx = _ctx()
    fn = _Counting(alg.allreduce_time)
    a = memo.time("allreduce", ctx, 4096, fn)
    b = memo.time("allreduce", ctx, 4096, fn)
    assert fn.calls == 2
    assert a == b
    assert len(memo) == 0


def test_max_entries_caps_storage_not_correctness():
    memo = CollectiveMemo(max_entries=1)
    ctx = _ctx()
    memo.time("allreduce", ctx, 1024, alg.allreduce_time)
    t = memo.time("allreduce", ctx, 2048, alg.allreduce_time)
    assert len(memo) == 1, "past the cap, values are computed but not stored"
    assert t == alg.allreduce_time(ctx, 2048)


def test_clear_resets_table_and_counters():
    memo = CollectiveMemo()
    ctx = _ctx()
    memo.time("allreduce", ctx, 4096, alg.allreduce_time)
    memo.time("allreduce", ctx, 4096, alg.allreduce_time)
    memo.clear()
    stats = memo.stats()
    assert (stats.hits, stats.misses, stats.entries) == (0, 0, 0)


@pytest.mark.parametrize("platform", ["vayu", "dcc"])
def test_cold_vs_warm_npb_run_identical(platform):
    """A cache-warm rerun reproduces the cold run bit-for-bit."""
    clear_default_memo()
    spec = get_platform(platform)
    cold = get_benchmark("cg").run(spec, 8, seed=3)
    assert memo_stats().misses > 0, "CG collectives should populate the cache"
    warm = get_benchmark("cg").run(spec, 8, seed=3)
    assert memo_stats().hits > 0, "rerun should be served from the cache"
    assert warm.projected_time == cold.projected_time
    assert warm.comm_percent == cold.comm_percent
    clear_default_memo()


def test_default_memo_is_process_shared():
    assert default_memo() is default_memo()
