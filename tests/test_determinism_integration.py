"""Cross-cutting determinism and consistency checks.

Determinism is a design requirement (DESIGN.md section 4): two runs with
the same seed must agree exactly, across every layer of the stack — not
just the engine (covered in test_sim_engine) but whole experiments.
"""

import pytest

from repro.apps.chaste import ChasteBenchmark
from repro.apps.metum import MetumBenchmark
from repro.harness import run_experiment
from repro.ipm.export import monitor_to_dict
from repro.npb import get_benchmark
from repro.osu import osu_bandwidth, osu_latency
from repro.platforms import DCC, EC2, VAYU


class TestDeterminism:
    def test_osu_sweeps_repeat_exactly(self):
        sizes = [1, 1024, 65536]
        a = osu_latency(DCC, sizes, iterations=20, seed=9)
        b = osu_latency(DCC, sizes, iterations=20, seed=9)
        assert a == b
        c = osu_bandwidth(EC2, sizes, iterations=3, seed=9)
        d = osu_bandwidth(EC2, sizes, iterations=3, seed=9)
        assert c == d

    def test_different_seeds_differ_on_noisy_platform(self):
        a = osu_latency(DCC, [1], iterations=20, seed=1)[1]
        b = osu_latency(DCC, [1], iterations=20, seed=2)[1]
        assert a != b

    def test_full_monitor_state_identical(self):
        """Not just wall time: every accounting bucket must agree."""
        runs = [
            get_benchmark("mg").run(DCC, 8, seed=5).monitor for _ in range(2)
        ]
        assert monitor_to_dict(runs[0]) == monitor_to_dict(runs[1])

    def test_application_runs_repeat(self):
        a = MetumBenchmark(sim_steps=1).run(EC2, 16, seed=7)
        b = MetumBenchmark(sim_steps=1).run(EC2, 16, seed=7)
        assert a.warmed_time == b.warmed_time
        assert a.io_time == b.io_time
        c = ChasteBenchmark(sim_steps=1).run(VAYU, 16, seed=7)
        d = ChasteBenchmark(sim_steps=1).run(VAYU, 16, seed=7)
        assert c.total_time == d.total_time

    def test_experiment_outputs_repeat(self):
        a = run_experiment("fig3", quick=True, seed=3)
        b = run_experiment("fig3", quick=True, seed=3)
        assert a.comparisons == b.comparisons


class TestCrossLayerConsistency:
    def test_bench_comm_percent_matches_monitor(self):
        """BenchResult.comm_percent must be derivable from its monitor."""
        from repro.ipm.report import summarize

        r = get_benchmark("cg").run(DCC, 16, seed=2)
        direct = summarize(r.monitor, "steady").comm_percent
        assert r.comm_percent == pytest.approx(direct)

    def test_projection_consistent_with_iteration_count(self):
        short = get_benchmark("ft", sim_iters=1).run(VAYU, 8, seed=2)
        long = get_benchmark("ft", sim_iters=4).run(VAYU, 8, seed=2)
        # Different simulated-iteration counts project to similar totals.
        assert short.projected_time == pytest.approx(long.projected_time, rel=0.1)

    def test_reps_minimum_never_worse(self):
        bench = get_benchmark("ep")
        one = bench.run(EC2, 16, seed=11, reps=1).projected_time
        best = bench.run(EC2, 16, seed=11, reps=3).projected_time
        assert best <= one + 1e-12

    def test_wall_time_ge_any_region(self):
        r = MetumBenchmark(sim_steps=1).run(DCC, 8, seed=1)
        for prof in r.monitor.profiles:
            for stats in prof.regions.values():
                assert prof.finish_time + 1e-9 >= stats.wall_time
