"""Integration tests for the simulated MPI runtime."""

import pytest

from repro.errors import ConfigError, MpiError
from repro.platforms import DCC, EC2, VAYU
from repro.smpi import ANY_SOURCE, MpiWorld, Placement, run_program
from repro.smpi.mapping import place_ranks
from repro.platforms.base import Platform
from repro.sim import Engine


def two_node_placement():
    return Placement(num_nodes=2, ranks_per_node=1)


class TestPlacement:
    def test_block_fills_nodes_in_order(self):
        eng = Engine()
        plat = Platform(VAYU, eng)
        place_ranks(plat, 12, Placement(strategy="block"))
        assert plat.nodes[0].nranks == 8
        assert plat.nodes[1].nranks == 4
        assert plat.nodes[2].nranks == 0

    def test_cyclic_deals_round_robin(self):
        eng = Engine()
        plat = Platform(EC2, eng)
        place_ranks(plat, 8, Placement(strategy="cyclic", num_nodes=4))
        assert [n.nranks for n in plat.nodes] == [2, 2, 2, 2]

    def test_ec2_block_uses_ht_slots(self):
        eng = Engine()
        plat = Platform(EC2, eng)
        place_ranks(plat, 16, Placement(strategy="block"))
        assert plat.nodes[0].nranks == 16  # one node: 16 HT slots

    def test_capacity_violation_rejected(self):
        eng = Engine()
        plat = Platform(DCC, eng)
        with pytest.raises(ConfigError):
            place_ranks(plat, 9, Placement(num_nodes=1))

    def test_too_many_nodes_rejected(self):
        eng = Engine()
        plat = Platform(EC2, eng)
        with pytest.raises(ConfigError):
            place_ranks(plat, 8, Placement(num_nodes=5))

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigError):
            Placement(strategy="scatter")


class TestPointToPoint:
    def test_payload_delivery(self):
        def prog(comm):
            if comm.rank == 0:
                yield from comm.send(1, 64, payload={"k": 1})
                return None
            msg = yield from comm.recv(0)
            return msg.payload

        res = run_program(VAYU, 2, prog)
        assert res.rank_results[1] == {"k": 1}

    def test_tag_matching(self):
        def prog(comm):
            if comm.rank == 0:
                yield from comm.send(1, 8, tag=5, payload="five")
                yield from comm.send(1, 8, tag=9, payload="nine")
                return None
            m9 = yield from comm.recv(0, tag=9)
            m5 = yield from comm.recv(0, tag=5)
            return (m9.payload, m5.payload)

        res = run_program(VAYU, 2, prog)
        assert res.rank_results[1] == ("nine", "five")

    def test_any_source(self):
        def prog(comm):
            if comm.rank == 0:
                got = []
                for _ in range(2):
                    msg = yield from comm.recv(ANY_SOURCE)
                    got.append(msg.source)
                return sorted(got)
            yield from comm.compute(flops=comm.rank * 1e6)
            yield from comm.send(0, 8)
            return None

        res = run_program(VAYU, 3, prog)
        assert res.rank_results[0] == [1, 2]

    def test_internode_slower_than_intranode(self):
        def prog(comm):
            t0 = comm.wtime()
            if comm.rank == 0:
                yield from comm.send(1, 1024)
            else:
                yield from comm.recv(0)
            return comm.wtime() - t0

        near = run_program(VAYU, 2, prog, placement=Placement(num_nodes=1))
        far = run_program(VAYU, 2, prog, placement=two_node_placement())
        assert far.rank_results[1] > near.rank_results[1]

    def test_rendezvous_requires_receiver(self):
        """A large (rendezvous) send cannot complete before the recv posts."""
        big = VAYU.fabric.eager_threshold * 4

        def prog(comm):
            if comm.rank == 0:
                t0 = comm.wtime()
                yield from comm.send(1, big)
                return comm.wtime() - t0
            yield from comm.delay(1.0)  # receiver arrives late
            yield from comm.recv(0)
            return None

        res = run_program(VAYU, 2, prog, placement=two_node_placement())
        assert res.rank_results[0] >= 1.0

    def test_eager_send_completes_without_receiver(self):
        small = 128

        def prog(comm):
            if comm.rank == 0:
                t0 = comm.wtime()
                yield from comm.send(1, small)
                dt = comm.wtime() - t0
                return dt
            yield from comm.delay(1.0)
            yield from comm.recv(0)
            return None

        res = run_program(VAYU, 2, prog, placement=two_node_placement())
        assert res.rank_results[0] < 0.5

    def test_isend_waitall(self):
        def prog(comm):
            if comm.rank == 0:
                reqs = [comm.isend(1, 256, tag=i) for i in range(4)]
                yield from comm.waitall(reqs)
                return None
            msgs = []
            for i in range(4):
                msg = yield from comm.recv(0, tag=i)
                msgs.append(msg.tag)
            return msgs

        res = run_program(VAYU, 2, prog)
        assert res.rank_results[1] == [0, 1, 2, 3]

    def test_invalid_rank_rejected(self):
        def prog(comm):
            yield from comm.send(5, 8)

        with pytest.raises(MpiError):
            run_program(VAYU, 2, prog)

    def test_sendrecv_ring(self):
        def prog(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            msg = yield from comm.sendrecv(right, 32, left, payload=comm.rank)
            return msg.payload

        res = run_program(VAYU, 4, prog)
        assert res.rank_results == [3, 0, 1, 2]

    def test_nic_serialisation_contends(self):
        """Two concurrent large sends from one node share its NIC."""
        n = 1 << 20

        def prog(comm):
            t0 = comm.wtime()
            if comm.rank in (0, 1):
                yield from comm.send(comm.rank + 2, n)
            else:
                yield from comm.recv(comm.rank - 2)
            return comm.wtime() - t0

        # ranks 0,1 on node0; 2,3 on node1
        both = run_program(
            DCC, 4, prog, placement=Placement(num_nodes=2, ranks_per_node=2)
        )
        t_contended = max(both.rank_results[2], both.rank_results[3])

        def solo(comm):
            t0 = comm.wtime()
            if comm.rank == 0:
                yield from comm.send(1, n)
            else:
                yield from comm.recv(0)
            return comm.wtime() - t0

        alone = run_program(DCC, 2, solo, placement=two_node_placement())
        assert t_contended > alone.rank_results[1] * 1.5


class TestCollectives:
    def test_allreduce_value(self):
        def prog(comm):
            total = yield from comm.allreduce(8, value=comm.rank + 1)
            return total

        res = run_program(VAYU, 8, prog)
        assert all(v == 36 for v in res.rank_results)

    def test_allreduce_custom_op(self):
        def prog(comm):
            peak = yield from comm.allreduce(8, value=comm.rank, op=max)
            return peak

        res = run_program(VAYU, 5, prog)
        assert all(v == 4 for v in res.rank_results)

    def test_bcast_from_root(self):
        def prog(comm):
            v = yield from comm.bcast(1024, root=2, value="hello" if comm.rank == 2 else None)
            return v

        res = run_program(VAYU, 4, prog)
        assert res.rank_results == ["hello"] * 4

    def test_reduce_only_root_gets_value(self):
        def prog(comm):
            v = yield from comm.reduce(8, root=1, value=1)
            return v

        res = run_program(VAYU, 4, prog)
        assert res.rank_results == [None, 4, None, None]

    def test_gather_order(self):
        def prog(comm):
            v = yield from comm.gather(8, root=0, value=comm.rank * 2)
            return v

        res = run_program(VAYU, 4, prog)
        assert res.rank_results[0] == [0, 2, 4, 6]
        assert res.rank_results[1] is None

    def test_allgather(self):
        def prog(comm):
            v = yield from comm.allgather(8, value=chr(ord("a") + comm.rank))
            return "".join(v)

        res = run_program(VAYU, 3, prog)
        assert res.rank_results == ["abc"] * 3

    def test_scatter(self):
        def prog(comm):
            vals = [10, 20, 30, 40] if comm.rank == 0 else None
            v = yield from comm.scatter(8, root=0, values=vals)
            return v

        res = run_program(VAYU, 4, prog)
        assert res.rank_results == [10, 20, 30, 40]

    def test_alltoall_transpose(self):
        def prog(comm):
            vals = [f"{comm.rank}->{d}" for d in range(comm.size)]
            got = yield from comm.alltoall(1024, values=vals)
            return got

        res = run_program(VAYU, 3, prog)
        assert res.rank_results[1] == ["0->1", "1->1", "2->1"]

    def test_barrier_synchronises(self):
        def prog(comm):
            yield from comm.compute(flops=comm.rank * 1e7)
            yield from comm.barrier()
            return comm.wtime()

        res = run_program(VAYU, 4, prog)
        times = res.rank_results
        assert max(times) - min(times) < 1e-9

    def test_collective_charges_wait_to_stragglers(self):
        """Ranks arriving early at a collective accumulate MPI wait time."""

        def prog(comm):
            if comm.rank == comm.size - 1:
                yield from comm.compute(flops=5e8)  # straggler
            yield from comm.barrier()
            return None

        res = run_program(VAYU, 4, prog)
        mon = res.monitor
        early = mon[0].total.mpi_time
        late = mon[3].total.mpi_time
        assert early > late
        assert early > 0.01  # waited for the straggler's ~170ms of compute

    def test_mismatched_collective_deadlocks(self):
        def prog(comm):
            if comm.rank == 0:
                yield from comm.barrier()
            # other ranks never join
            return None

        from repro.errors import DeadlockError

        with pytest.raises(DeadlockError):
            run_program(VAYU, 2, prog)


class TestCommSplit:
    def test_split_into_halves(self):
        def prog(comm):
            color = comm.rank // 2
            sub = yield from comm.split(color)
            total = yield from sub.allreduce(8, value=comm.rank)
            return (sub.size, sub.rank, total)

        res = run_program(VAYU, 4, prog)
        assert res.rank_results[0] == (2, 0, 1)   # ranks 0+1
        assert res.rank_results[3] == (2, 1, 5)   # ranks 2+3

    def test_split_key_reorders(self):
        def prog(comm):
            sub = yield from comm.split(0, key=-comm.rank)
            return sub.rank

        res = run_program(VAYU, 3, prog)
        assert res.rank_results == [2, 1, 0]

    def test_split_groups_have_distinct_ids(self):
        def prog(comm):
            sub = yield from comm.split(comm.rank % 2)
            return sub.comm_id

        res = run_program(VAYU, 4, prog)
        ids = set(res.rank_results)
        assert len(ids) == 2

    def test_nested_collectives_on_subcomm(self):
        def prog(comm):
            sub = yield from comm.split(comm.rank % 2)
            v = yield from sub.allgather(8, value=comm.rank)
            return v

        res = run_program(VAYU, 6, prog)
        assert res.rank_results[0] == [0, 2, 4]
        assert res.rank_results[1] == [1, 3, 5]


class TestIpmIntegration:
    def test_region_accounting(self):
        def prog(comm):
            with comm.region("solve"):
                yield from comm.compute(flops=1e8)
                yield from comm.allreduce(4, value=1.0)
            with comm.region("io"):
                yield from comm.io_read(1e6)
            return None

        res = run_program(VAYU, 4, prog)
        mon = res.monitor
        assert "solve" in mon.region_names() and "io" in mon.region_names()
        solve = mon[0].regions["solve"]
        assert solve.compute_time > 0
        assert solve.mpi_time >= 0
        io = mon[0].regions["io"]
        assert io.io_time > 0 and io.compute_time == 0

    def test_ksp_style_call_histogram(self):
        """All-reduce message sizes are recorded, enabling the paper's
        'entirely 4-byte all-reduces' style of statement."""

        def prog(comm):
            with comm.region("KSp"):
                for _ in range(10):
                    yield from comm.allreduce(4, value=0.5)
            return None

        res = run_program(VAYU, 4, prog)
        ksp = res.monitor[0].regions["KSp"]
        sizes = ksp.call_sizes("MPI_Allreduce")
        assert set(sizes) == {4}
        assert sizes[4].count == 10

    def test_comm_percent_increases_with_latency(self):
        def prog(comm):
            for _ in range(20):
                yield from comm.compute(flops=1e6)
                yield from comm.allreduce(8, value=1)
            return None

        pl = Placement(ranks_per_node=4)
        fast = run_program(VAYU, 8, prog, placement=pl)
        slow = run_program(DCC, 8, prog, placement=pl)
        assert slow.report().comm_percent > fast.report().comm_percent

    def test_wall_time_positive_and_reported(self):
        def prog(comm):
            yield from comm.compute(flops=1e6)
            return None

        res = run_program(VAYU, 2, prog)
        assert res.wall_time > 0
        assert res.report().wall_time == pytest.approx(res.wall_time, rel=1e-6)


class TestRepeats:
    def test_reps_take_min(self):
        def prog(comm):
            yield from comm.compute(flops=1e8, mem_bytes=1e6)
            yield from comm.barrier()
            return None

        one = run_program(EC2, 4, prog, reps=1, seed=11)
        best = run_program(EC2, 4, prog, reps=4, seed=11)
        assert best.wall_time <= one.wall_time + 1e-12

    def test_same_seed_reproducible(self):
        def prog(comm):
            yield from comm.compute(flops=1e8, mem_bytes=1e7)
            yield from comm.allreduce(8, value=1)
            return None

        a = run_program(DCC, 8, prog, seed=3)
        b = run_program(DCC, 8, prog, seed=3)
        assert a.wall_time == b.wall_time
