"""Tests for the NPB numeric kernels and distributed validation."""

import numpy as np
import pytest

from repro.errors import ConfigError, VerificationError
from repro.npb.kernels import (
    NpbRandom,
    cg_kernel,
    ep_kernel,
    ft_kernel,
    is_kernel,
    make_spd_matrix,
    mg_kernel,
)
from repro.npb.kernels.distributed import distributed_cg, distributed_ep
from repro.npb.kernels.ep_kernel import combine
from repro.npb.kernels.randnpb import A, MOD
from repro.npb.verification import VerificationRecord
from repro.platforms import DCC, VAYU


class TestNpbRandom:
    def test_bit_exact_vs_scalar_reference(self):
        x = 314159265
        ref = []
        for _ in range(300):
            x = (x * A) % MOD
            ref.append(x * 2.0**-46)
        assert NpbRandom(314159265).randlc(300).tolist() == ref

    def test_skip_equals_drawing(self):
        a = NpbRandom(314159265)
        a.randlc(777)
        b = NpbRandom(314159265)
        b.skip(777)
        assert a.state == b.state

    def test_jumped_constructor(self):
        direct = NpbRandom(271828183)
        direct.randlc(100)
        jumped = NpbRandom.jumped(271828183, 100)
        assert direct.state == jumped.state

    def test_deviates_in_unit_interval(self):
        vals = NpbRandom().randlc(10_000)
        assert vals.min() > 0.0 and vals.max() < 1.0
        assert abs(vals.mean() - 0.5) < 0.02

    def test_block_boundary_continuity(self):
        """Streams must be identical regardless of block chunking."""
        one = NpbRandom(314159265).randlc(3 * 16384 + 7)
        rng = NpbRandom(314159265)
        parts = np.concatenate([rng.randlc(16384), rng.randlc(16384 + 7),
                                rng.randlc(16384)])
        assert np.array_equal(one, parts)

    def test_invalid_seed(self):
        with pytest.raises(ConfigError):
            NpbRandom(2)  # even
        with pytest.raises(ConfigError):
            NpbRandom(0)


class TestEpKernel:
    def test_acceptance_rate_is_pi_over_4(self):
        result = ep_kernel(18)
        assert result.verify().passed
        assert result.acceptance_rate == pytest.approx(np.pi / 4, rel=5e-3)

    def test_partitioned_equals_serial(self):
        serial = ep_kernel(16)
        parts = [ep_kernel(16, rank=r, nprocs=5) for r in range(5)]
        merged = combine(parts, 1 << 16)
        assert merged.accepted == serial.accepted
        assert merged.q == serial.q
        assert merged.sx == pytest.approx(serial.sx, abs=1e-9)

    def test_histogram_counts_sum_to_accepted(self):
        result = ep_kernel(16)
        assert sum(result.q) == result.accepted

    def test_invalid_args(self):
        with pytest.raises(ConfigError):
            ep_kernel(2)
        with pytest.raises(ConfigError):
            ep_kernel(16, rank=4, nprocs=4)


class TestCgKernel:
    def test_zeta_converges_to_shift_plus_lambda_min(self):
        result = cg_kernel(n=600, nonzer=6, niter=12, shift=10.0, lam_min=0.1)
        assert result.verify().passed
        assert result.zeta == pytest.approx(10.1, abs=1e-3)

    def test_matrix_is_symmetric_and_spd(self):
        a = make_spd_matrix(300, 5, lam_min=0.2)
        dense = a.toarray()
        assert np.allclose(dense, dense.T)
        eigs = np.linalg.eigvalsh(dense)
        assert eigs.min() == pytest.approx(0.2, rel=1e-6)

    def test_zeta_history_converges_monotonically_late(self):
        result = cg_kernel(n=600, nonzer=6, niter=12)
        tail = np.abs(np.diff(result.zeta_history[-4:]))
        assert tail.max() < 1e-6

    def test_invalid_matrix_params(self):
        with pytest.raises(ConfigError):
            make_spd_matrix(2, 1)


class TestFtKernel:
    def test_energy_follows_analytic_decay(self):
        result = ft_kernel((32, 32, 32), niter=5)
        assert result.verify().passed
        assert result.energy_final == pytest.approx(result.energy_expected, rel=1e-12)

    def test_energy_decays(self):
        result = ft_kernel((16, 16, 16), niter=4)
        assert result.energy_final < result.energy_initial

    def test_checksums_recorded_per_step(self):
        result = ft_kernel((16, 16, 16), niter=6)
        assert len(result.checksums) == 6

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            ft_kernel((1, 16, 16), 3)


class TestIsKernel:
    def test_ranks_form_sorted_permutation(self):
        result = is_kernel(14, 11)
        assert result.verify().passed

    def test_bucket_counts_cover_all_keys(self):
        result = is_kernel(14, 11)
        assert result.bucket_counts.sum() == result.keys.size

    def test_key_distribution_is_triangular_ish(self):
        keys = is_kernel(15, 11).keys
        # The 4-deviate average concentrates around max_key/2.
        mid = (1 << 11) / 2
        assert abs(keys.mean() - mid) < mid * 0.05
        assert keys.min() >= 0 and keys.max() < (1 << 11)


class TestMgKernel:
    def test_vcycle_contracts_residual(self):
        result = mg_kernel(32, cycles=4)
        assert result.verify().passed
        assert result.residuals[-1] < result.residuals[0] * 0.05

    def test_rejects_non_power_grid(self):
        with pytest.raises(ConfigError):
            mg_kernel(24)

    def test_contraction_factors_shape(self):
        result = mg_kernel(16, cycles=3)
        assert len(result.contraction_factors) == 3


class TestVerificationRecord:
    def test_passes_within_tolerance(self):
        rec = VerificationRecord("x", "S", "q", 1.0005, 1.0, 1e-3)
        assert rec.passed and rec.check() is rec

    def test_fails_outside_tolerance(self):
        rec = VerificationRecord("x", "S", "q", 1.1, 1.0, 1e-3)
        with pytest.raises(VerificationError):
            rec.check()

    def test_zero_reference_absolute(self):
        assert VerificationRecord("x", "S", "q", 0.05, 0.0, 0.1).passed
        assert not VerificationRecord("x", "S", "q", 0.2, 0.0, 0.1).passed


class TestDistributedValidation:
    def test_distributed_ep_matches_serial(self):
        serial = ep_kernel(14)
        out = distributed_ep(VAYU, 4, 14)
        assert out.value.q == serial.q
        assert out.value.sx == pytest.approx(serial.sx, abs=1e-9)
        assert out.wall_time > 0

    def test_distributed_cg_matches_serial(self):
        serial = cg_kernel(n=400, nonzer=5, niter=6)
        out = distributed_cg(VAYU, 4, n=400, nonzer=5, niter=6)
        assert out.value == pytest.approx(serial.zeta_history[5], rel=1e-9)

    def test_distributed_cg_platform_independent_answer(self):
        """The virtual platform changes time, never arithmetic."""
        a = distributed_cg(VAYU, 4, n=400, nonzer=5, niter=4)
        b = distributed_cg(DCC, 4, n=400, nonzer=5, niter=4)
        assert a.value == pytest.approx(b.value, rel=1e-12)
        assert b.wall_time > a.wall_time  # but DCC is slower

    def test_distributed_ep_guards_scale(self):
        with pytest.raises(ConfigError):
            distributed_ep(VAYU, 4, m=30)
