"""Runtime MPI-sanitizer coverage: each seeded defect class is caught
by exactly the intended check, and clean paper workloads stay clean."""

import pytest

from repro.errors import ConfigError, DeadlockError, SanitizerError
from repro.harness.parallel import cell_worker
from repro.harness.runner import run_batch
from repro.platforms import get_platform
from repro.smpi.world import MpiWorld

VAYU = get_platform("vayu")


class TestDeadlockWaitForGraph:
    def test_recv_cycle_names_ranks(self):
        """A crafted send/recv cycle yields a named-rank cycle report."""

        def prog(comm):
            peer = 1 - comm.rank
            yield from comm.recv(peer)  # both ranks recv first: classic cycle
            yield from comm.send(peer, 64)

        with pytest.raises(DeadlockError) as exc:
            MpiWorld(VAYU, 2, sanitize=True).launch(prog)
        err = exc.value
        assert err.cycle == (0, 1, 0)
        assert len(err.pending_ops) == 2
        assert any("rank 0: recv from rank 1" in op for op in err.pending_ops)
        assert "wait-for cycle" in str(err)

    def test_collective_straggler_reports_pending_op(self):
        """The engine-drain path goes through the sanitizer's report."""

        def prog(comm):
            if comm.rank == 0:  # lint-ok: DET006 deliberate defect under test
                yield from comm.barrier()
            return None

        with pytest.raises(DeadlockError) as exc:
            MpiWorld(VAYU, 2, sanitize=True).launch(prog)
        err = exc.value
        assert err.cycle is None  # rank 1 terminated; no cycle, just a wait
        assert any("MPI_Barrier" in op for op in err.pending_ops)

    def test_unsanitized_deadlock_is_bare(self):
        """Without the sanitizer the old queue-drained error remains."""

        def prog(comm):
            yield from comm.recv(1 - comm.rank)

        with pytest.raises(DeadlockError) as exc:
            MpiWorld(VAYU, 2, sanitize=False).launch(prog)
        assert exc.value.pending_ops == ()
        assert exc.value.cycle is None


class TestCollectiveMismatch:
    def test_op_divergence(self):
        """One rank calls bcast while the other calls allreduce."""

        def prog(comm):
            if comm.rank == 0:  # lint-ok: DET006 deliberate defect under test
                yield from comm.bcast(64)
            else:
                yield from comm.allreduce(64)

        with pytest.raises(SanitizerError) as exc:
            MpiWorld(VAYU, 2, sanitize=True).launch(prog)
        (diag,) = exc.value.diagnostics
        assert diag.check == "collective-mismatch"
        assert diag.severity == "error"
        assert set(diag.ranks) == {0, 1}
        assert set(diag.details["ops"].values()) == {"MPI_Bcast(root=0)", "MPI_Allreduce"}

    def test_root_divergence(self):
        """Same op, different roots — silent corruption without the check."""

        def prog(comm):
            yield from comm.bcast(64, root=comm.rank % 2)

        with pytest.raises(SanitizerError) as exc:
            MpiWorld(VAYU, 2, sanitize=True).launch(prog)
        (diag,) = exc.value.diagnostics
        assert diag.check == "collective-mismatch"
        assert "root=0" in str(diag.details["ops"]) and "root=1" in str(diag.details["ops"])

    def test_nbytes_divergence_is_warning_only(self):
        def prog(comm):
            result = yield from comm.allreduce(8 * (comm.rank + 1), value=1)
            return result

        res = MpiWorld(VAYU, 2, sanitize=True).launch(prog)
        assert res.rank_results == [2, 2]  # run completes normally
        report = res.sanitizer_report
        assert not report.errors()
        (warn,) = report.warnings()
        assert warn.check == "nbytes-divergence"
        assert warn.details["nbytes"] == {0: 8, 1: 16}


class TestFinalizeChecks:
    def test_leaked_unmatched_send(self):
        def prog(comm):
            if comm.rank == 0:
                yield from comm.send(1, 128, tag=7)
            return None

        with pytest.raises(SanitizerError) as exc:
            MpiWorld(VAYU, 2, sanitize=True).launch(prog)
        (diag,) = exc.value.diagnostics
        assert diag.check == "message-leak"
        assert diag.ranks == (0, 1)
        assert diag.details == {"tag": 7, "nbytes": 128}

    def test_invalid_send_tag(self):
        def prog(comm):
            yield from comm.send(1 - comm.rank, 8, tag=-2)

        with pytest.raises(SanitizerError) as exc:
            MpiWorld(VAYU, 2, sanitize=True).launch(prog)
        assert exc.value.diagnostics[0].check == "invalid-tag"

    def test_invalid_recv_peer(self):
        world = MpiWorld(VAYU, 2, sanitize=True)
        with pytest.raises(SanitizerError) as exc:
            world.post_recv(0, source=5, tag=0)
        assert exc.value.diagnostics[0].check == "invalid-peer"


class TestNoFalsePositives:
    def test_sanitize_does_not_change_timing(self):
        def ring(comm):
            nxt = (comm.rank + 1) % comm.size
            prv = (comm.rank - 1) % comm.size
            for _ in range(5):
                yield from comm.sendrecv(nxt, 1024, prv)
                yield from comm.allreduce(8, value=1)
            return comm.wtime()

        plain = MpiWorld(VAYU, 4, sanitize=False).launch(ring)
        checked = MpiWorld(VAYU, 4, sanitize=True).launch(ring)
        assert plain.wall_time == checked.wall_time
        assert plain.rank_results == checked.rank_results
        report = checked.sanitizer_report
        assert report.clean
        assert report.sends_checked == 20 and report.collectives_checked == 20

    def test_paper_experiment_clean_under_sanitize(self):
        """One full paper experiment runs --sanitize with zero diagnostics."""
        batch = run_batch(["fig1"], quick=True, seed=1, sanitize=True)
        assert batch.sanitize_summary is not None
        assert batch.sanitize_summary.startswith("sanitize: clean")
        assert "0 errors" in batch.sanitize_summary
        assert "0 warning(s)" in batch.sanitize_summary
        assert "[sanitize: clean" in batch.render()

    def test_npb_collective_workload_clean(self):
        from repro.analysis.sanitizer import sanitize_scope
        from repro.npb import get_benchmark

        with sanitize_scope() as reports:
            get_benchmark("cg").run(VAYU, 4, seed=1)
        assert reports, "no sanitized worlds were finalized"
        assert all(r.clean for r in reports)
        assert sum(r.collectives_checked for r in reports) > 0


class TestWorkerRegistration:
    def test_nested_worker_rejected_at_registration(self):
        with pytest.raises(ConfigError, match="module-level"):
            @cell_worker("sanitizer_test_nested")
            def nested(x):  # pragma: no cover - registration must fail
                return x

    def test_lambda_worker_rejected_at_registration(self):
        with pytest.raises(ConfigError, match="module-level"):
            cell_worker("sanitizer_test_lambda")(lambda x: x)  # lint-ok: DET005


class TestReportShape:
    def test_report_to_dict_round_trips(self):
        def prog(comm):
            yield from comm.barrier()
            return None

        res = MpiWorld(VAYU, 2, sanitize=True).launch(prog)
        d = res.sanitizer_report.to_dict()
        assert d["nprocs"] == 2
        assert d["collectives_checked"] == 2
        assert d["diagnostics"] == []
        assert "clean" in res.sanitizer_report.render()
