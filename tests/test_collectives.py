"""Unit tests for the collective cost models."""

import pytest

from repro.errors import ConfigError
from repro.hardware.interconnect import (
    EthernetFabric,
    InfinibandFabric,
    SharedMemoryFabric,
)
from repro.smpi.collectives.algorithms import (
    CollectiveContext,
    allgather_time,
    allreduce_time,
    alltoall_time,
    alltoallv_time,
    barrier_time,
    bcast_time,
    gather_time,
    reduce_scatter_time,
    reduce_time,
    scatter_time,
)

IB = InfinibandFabric()
ETH = EthernetFabric("eth", latency=25e-6, peak_bw=196e6)
SHM = SharedMemoryFabric()


def ctx(p=8, nnodes=2, rpn=4, net=IB, extra=0.0, shm_factor=1.0):
    return CollectiveContext(
        p=p, nnodes=nnodes, rpn=rpn, net=net, shm=SHM,
        extra_latency=extra, shm_bw_factor=shm_factor,
    )


class TestContext:
    def test_invalid_shapes_rejected(self):
        with pytest.raises(ConfigError):
            ctx(p=0)
        with pytest.raises(ConfigError):
            ctx(p=4, nnodes=8)
        with pytest.raises(ConfigError):
            ctx(p=4, rpn=8)

    def test_tree_rounds_split(self):
        c = ctx(p=16, nnodes=4, rpn=4)
        inter, intra = c.tree_rounds()
        assert (inter, intra) == (2, 2)

    def test_single_rank_no_rounds(self):
        c = ctx(p=1, nnodes=1, rpn=1)
        assert c.tree_rounds() == (0, 0)
        assert c.ring_pass(4096) == 0.0

    def test_ring_pass_gated_by_internode_when_spanning(self):
        spanning = ctx(p=16, nnodes=4, rpn=4)
        local = ctx(p=16, nnodes=1, rpn=16)
        assert spanning.ring_pass(4096) == pytest.approx(15 * spanning.net_msg(4096))
        assert local.ring_pass(4096) == pytest.approx(15 * local.shm_msg(4096))

    def test_net_msg_congestion_applies_to_shared_links(self):
        c = ctx(net=ETH)
        solo = c.net_msg(1 << 20, link_share=1)
        shared = c.net_msg(1 << 20, link_share=2)
        # 2x the bytes through the link plus the congestion factor.
        assert shared > 2.0 * (solo - ETH.latency - ETH.o_send - ETH.o_recv)

    def test_net_msg_rendezvous_latency(self):
        c = ctx(net=IB)
        small = c.net_msg(IB.eager_threshold)
        big = c.net_msg(IB.eager_threshold + 1)
        # The handshake triples the latency term.
        assert big - small > 1.5 * IB.latency

    def test_shm_pressure_slows_intranode(self):
        slow = ctx(shm_factor=0.5).shm_msg(1 << 20)
        fast = ctx(shm_factor=1.0).shm_msg(1 << 20)
        assert slow > 1.8 * fast


class TestCosts:
    def test_single_rank_collectives_free(self):
        c = ctx(p=1, nnodes=1, rpn=1)
        assert allreduce_time(c, 1024) == 0.0
        assert alltoall_time(c, 1024) == 0.0
        assert allgather_time(c, 1024) == 0.0

    def test_barrier_grows_with_node_count(self):
        t2 = barrier_time(ctx(p=8, nnodes=2, rpn=4))
        t8 = barrier_time(ctx(p=8, nnodes=8, rpn=1))
        assert t8 > t2

    def test_allreduce_small_dominated_by_latency(self):
        eth = ctx(net=ETH)
        ib = ctx(net=IB)
        assert allreduce_time(eth, 8) > 10 * allreduce_time(ib, 8)

    def test_allreduce_large_uses_ring(self):
        c = ctx()
        n = 8 << 20
        ring = allreduce_time(c, n)
        # Ring moves ~2n/p per inter-node step; must beat log-p doubling
        # of the full buffer.
        inter, intra = c.tree_rounds()
        doubling = inter * c.net_msg(n) + intra * c.shm_msg(n)
        assert ring < doubling

    def test_alltoall_volume_shrinks_with_p(self):
        """FT's recovery: total volume per rank D/p, so time drops as p
        grows at fixed node count."""
        d = 500e6
        t16 = alltoall_time(ctx(p=16, nnodes=2, rpn=8, net=ETH), d / 16)
        t64 = alltoall_time(ctx(p=64, nnodes=8, rpn=8, net=ETH), d / 64)
        assert t64 < t16

    def test_alltoall_monotone_in_bytes(self):
        c = ctx(net=ETH)
        assert alltoall_time(c, 1e6) < alltoall_time(c, 1e7)

    def test_alltoallv_max_pair_gates_rounds(self):
        c = ctx(net=ETH)
        balanced = alltoallv_time(c, 1e6, max_pair=1e6 / c.p)
        skewed = alltoallv_time(c, 1e6, max_pair=4e6 / c.p)
        assert skewed > 2 * balanced

    def test_bcast_reduce_scatter_gather_positive(self):
        c = ctx()
        for fn in (bcast_time, reduce_time, gather_time, scatter_time,
                   allgather_time, reduce_scatter_time):
            assert fn(c, 4096) > 0.0

    def test_reduce_costs_more_than_bcast(self):
        c = ctx()
        assert reduce_time(c, 1 << 20) > bcast_time(c, 1 << 20)

    def test_negative_free_for_zero_bytes(self):
        c = ctx()
        assert bcast_time(c, 0.0) >= 0.0
        assert allgather_time(c, 0.0) >= 0.0


class TestHypervisorExtraLatency:
    def test_extra_latency_inflates_internode_rounds(self):
        base = allreduce_time(ctx(net=ETH, extra=0.0), 8)
        jittery = allreduce_time(ctx(net=ETH, extra=100e-6), 8)
        inter, _ = ctx(net=ETH).tree_rounds()
        assert jittery - base == pytest.approx(inter * 100e-6, rel=0.01)
