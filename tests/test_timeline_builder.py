"""Tests for the timeline tracer and the custom-platform builder."""

import json

import pytest

from repro.errors import ConfigError
from repro.ipm.timeline import Interval, Timeline
from repro.npb import get_benchmark
from repro.platforms import VAYU
from repro.platforms.builder import make_platform
from repro.smpi import MpiWorld, run_program


def traced_world(nprocs=4):
    def prog(comm):
        yield from comm.compute(flops=1e7)
        yield from comm.allreduce(8, value=1.0)
        if comm.rank == 0:
            yield from comm.io_read(1e5, concurrent=1)
        return None

    world = MpiWorld(VAYU, nprocs, timeline=True, seed=1)
    world.launch(prog)
    return world


class TestTimeline:
    def test_disabled_by_default(self):
        def prog(comm):
            yield from comm.compute(flops=1e6)
            return None

        assert run_program(VAYU, 2, prog).world.timeline is None

    def test_records_all_kinds(self):
        tl = traced_world().timeline
        kinds = {iv.kind for rank in tl.ranks for iv in rank}
        assert kinds == {"compute", "mpi", "io"}

    def test_intervals_sorted_and_bounded(self):
        tl = traced_world().timeline
        lo, hi = tl.span()
        for rank in tl.ranks:
            starts = [iv.start for iv in rank]
            assert starts == sorted(starts)
            for iv in rank:
                assert lo <= iv.start <= iv.end <= hi

    def test_busy_fraction_in_unit_interval(self):
        tl = traced_world().timeline
        for rank in range(4):
            assert 0.0 <= tl.busy_fraction(rank, "compute") <= 1.0

    def test_ascii_render_row_per_rank(self):
        text = traced_world().timeline.render_ascii(width=40)
        assert text.count("|") == 2 * 4  # two bars per rank row

    def test_json_roundtrip(self, tmp_path):
        tl = traced_world().timeline
        path = tmp_path / "tl.json"
        tl.write_json(path)
        data = json.loads(path.read_text())
        assert data["nprocs"] == 4
        assert data["ranks"][0][0]["kind"] in ("compute", "mpi", "io")

    def test_validation(self):
        tl = Timeline(2)
        with pytest.raises(ConfigError):
            tl.record(0, 1.0, 0.5, "compute", "x")
        with pytest.raises(ConfigError):
            tl.record(0, 0.0, 1.0, "sleep", "x")
        with pytest.raises(ConfigError):
            Timeline(0)

    def test_interval_duration(self):
        assert Interval(1.0, 3.5, "mpi", "x").duration == pytest.approx(2.5)

    def test_empty_timeline_renders(self):
        assert "(empty timeline)" in Timeline(2).render_ascii()


class TestPlatformBuilder:
    def test_counterfactual_vayu_with_gige_is_slower(self):
        """The builder supports the what-if the paper implies: Vayu-class
        nodes on commodity Ethernet lose their scaling edge."""
        gige_vayu = make_platform(
            "vayu-gige", num_nodes=16, clock_ghz=2.93, flops_per_cycle=1.10,
            mem_bw_gbs=16.0, fabric="gige", hypervisor="none",
            filesystem="lustre",
        )
        bench = get_benchmark("is")
        real = bench.run(VAYU, 32, seed=1).projected_time
        downgraded = bench.run(gige_vayu, 32, seed=1).projected_time
        assert downgraded > 2 * real

    def test_defaults_give_runnable_platform(self):
        spec = make_platform("lab", num_nodes=4, clock_ghz=2.5)
        r = get_benchmark("ep").run(spec, 16, seed=1)
        assert r.projected_time > 0

    def test_hypervisor_presets_set_numa_semantics(self):
        virt = make_platform("cloudy", num_nodes=4, clock_ghz=2.5,
                             hypervisor="esx")
        bare = make_platform("metal", num_nodes=4, clock_ghz=2.5,
                             hypervisor="none")
        assert not virt.numa_affinity_enforced
        assert bare.numa_affinity_enforced
        assert virt.numa_burst_noise > 0 == bare.numa_burst_noise

    def test_unknown_presets_rejected(self):
        with pytest.raises(ConfigError):
            make_platform("x", num_nodes=2, clock_ghz=2.0, fabric="myrinet")
        with pytest.raises(ConfigError):
            make_platform("x", num_nodes=2, clock_ghz=2.0, hypervisor="kvm")
        with pytest.raises(ConfigError):
            make_platform("x", num_nodes=0, clock_ghz=2.0)

    def test_table1_row_renders(self):
        spec = make_platform("lab", num_nodes=4, clock_ghz=2.5, dram_gb=48)
        row = spec.table1_row()
        assert row["Memory per node"] == "48GB"
        assert row["Clock Spd"] == "2.50GHz"
