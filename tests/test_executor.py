"""Tests for the transport-agnostic cell executors (repro.harness.executor).

The contract under test is the tentpole invariant: every backend —
serial, per-cell pool futures, chunked dispatch, the transient-worker
wrapper — produces the same ``{key: result}`` mapping for the same
cells, so reports are byte-identical regardless of how cells were
scheduled.  Plus the lifecycle guarantees: spec-string parsing, scope
activation, hard teardown on interrupt, and bounded worker-loss
resubmission.
"""

from __future__ import annotations

import json
from concurrent.futures import Future

import pytest

import repro.harness.executor as executor_mod
from repro.errors import ConfigError
from repro.harness.executor import (
    LocalPoolExecutor,
    SerialExecutor,
    TransientExecutor,
    WorkerLostError,
    active_executor,
    executor_scope,
    make_executor,
)
from repro.harness.parallel import Cell, cell_worker, run_cells


@cell_worker("ex_square")
def _ex_square(x):
    return {"v": float(x * x)}


@cell_worker("ex_boom")
def _ex_boom(x):
    if x == 3:
        raise ValueError(f"boom at {x}")
    return {"v": float(x)}


@cell_worker("ex_interrupt")
def _ex_interrupt(x):
    raise KeyboardInterrupt


def _cells(n, worker="ex_square"):
    return [Cell((i,), worker, (i,)) for i in range(n)]


# ---------------------------------------------------------------------------
# SerialExecutor
# ---------------------------------------------------------------------------

class TestSerial:
    def test_executes_at_submit(self):
        ex = SerialExecutor()
        fut = ex.submit(Cell((2,), "ex_square", (2,)))
        assert fut.done() and fut.result() == {"v": 4.0}
        assert ex.dispatched == 1 and not ex.parallel
        assert "1 cell(s) dispatched" in ex.banner()

    def test_captures_cell_exceptions(self):
        ex = SerialExecutor()
        fut = ex.submit(Cell((3,), "ex_boom", (3,)))
        assert isinstance(fut.exception(), ValueError)

    def test_lets_interrupts_fly(self):
        # A KeyboardInterrupt must reach the driving loop, not be
        # swallowed into a future nobody is checking yet.
        with pytest.raises(KeyboardInterrupt):
            SerialExecutor().submit(Cell((0,), "ex_interrupt", (0,)))


# ---------------------------------------------------------------------------
# LocalPoolExecutor (per-cell and chunked dispatch)
# ---------------------------------------------------------------------------

class TestLocalPool:
    def test_chunked_matches_per_cell(self):
        serial = run_cells(_cells(7), jobs=1)
        for chunk in (1, 3, "auto"):
            with executor_mod.LocalPoolExecutor(2, chunk=chunk) as ex:
                assert run_cells(_cells(7), executor=ex) == serial

    def test_error_in_chunk_hits_only_its_cell(self):
        # One raising cell must surface its own exception without
        # poisoning its chunk-mates.
        with LocalPoolExecutor(2, chunk=3) as ex:
            futures = ex.submit_many(_cells(7, worker="ex_boom"))
            for i, fut in enumerate(futures):
                if i == 3:
                    assert isinstance(fut.exception(), ValueError)
                else:
                    assert fut.result() == {"v": float(i)}

    def test_chunk_size_auto(self):
        ex = LocalPoolExecutor(2, chunk="auto")
        try:
            # ceil(n / (jobs * 4)), floored at 1, capped at AUTO_CHUNK_MAX.
            assert ex.chunk_size(4) == 1
            assert ex.chunk_size(40) == 5
            assert ex.chunk_size(600) == LocalPoolExecutor.AUTO_CHUNK_MAX
        finally:
            ex.shutdown()

    def test_rejects_bad_chunk(self):
        with pytest.raises(ConfigError, match="chunk must be"):
            LocalPoolExecutor(2, chunk=0)

    def test_pool_rebuilds_after_shutdown(self):
        ex = LocalPoolExecutor(1)
        try:
            assert ex.submit(Cell((2,), "ex_square", (2,))).result() == {"v": 4.0}
            ex.shutdown()
            assert ex.submit(Cell((3,), "ex_square", (3,))).result() == {"v": 9.0}
        finally:
            ex.shutdown(kill=True)


# ---------------------------------------------------------------------------
# run_cells teardown on interrupt (the dangling-pool satellite fix)
# ---------------------------------------------------------------------------

class TestInterruptTeardown:
    def test_keyboard_interrupt_tears_down_owned_pool(self, monkeypatch):
        monkeypatch.delenv("REPRO_SUPERVISE", raising=False)
        created = []

        class Recording(LocalPoolExecutor):
            def __init__(self, *a, **k):
                super().__init__(*a, **k)
                self.kills = []
                created.append(self)

            def shutdown(self, kill=False):
                self.kills.append(kill)
                super().shutdown(kill=kill)

        monkeypatch.setattr(executor_mod, "LocalPoolExecutor", Recording)
        with pytest.raises(KeyboardInterrupt):
            run_cells(_cells(4, worker="ex_interrupt"), jobs=2)
        [ex] = created
        assert True in ex.kills, "owned pool must be shut down hard"
        assert ex._pool is None, "no dangling ProcessPoolExecutor"

    def test_explicit_executor_survives_interrupt(self, monkeypatch):
        # A caller-owned backend is the caller's to shut down; run_cells
        # must cancel its futures but leave the transport usable.
        monkeypatch.delenv("REPRO_SUPERVISE", raising=False)
        with LocalPoolExecutor(2) as ex:
            with pytest.raises(KeyboardInterrupt):
                run_cells(_cells(4, worker="ex_interrupt"), executor=ex)
            assert run_cells(_cells(3), executor=ex) == run_cells(_cells(3))


# ---------------------------------------------------------------------------
# TransientExecutor
# ---------------------------------------------------------------------------

class _Flaky(executor_mod.CellExecutor):
    """Fails each cell's first ``fail_first`` attempts with worker loss."""

    kind = "flaky"

    def __init__(self, fail_first=1):
        self.fail_first = fail_first
        self.attempts: dict[tuple, int] = {}
        self.recycles = 0

    def submit(self, cell):
        fut: Future = Future()
        fut.set_running_or_notify_cancel()
        n = self.attempts.get(cell.key, 0)
        self.attempts[cell.key] = n + 1
        if n < self.fail_first:
            fut.set_exception(WorkerLostError(f"lost during {cell.key}"))
        else:
            fut.set_result({"v": float(cell.args[0])})
        return fut

    def recycle(self, kill=False):
        self.recycles += 1
        return self


class TestTransient:
    def test_resubmits_after_worker_loss(self):
        inner = _Flaky(fail_first=1)
        ex = TransientExecutor(inner, respawns=2)
        futures = ex.submit_many(_cells(3))
        assert [f.result() for f in futures] == [{"v": float(i)} for i in range(3)]
        assert ex.resubmitted == 3 and inner.recycles >= 1
        assert "3 resubmitted after worker loss" in ex.banner()

    def test_loss_past_the_bound_surfaces(self):
        ex = TransientExecutor(_Flaky(fail_first=10), respawns=2)
        fut = ex.submit(Cell((0,), "ex_square", (0,)))
        assert isinstance(fut.exception(), WorkerLostError)
        assert ex.resubmitted == 2  # the bound, not the demand

    def test_rejects_negative_respawns(self):
        with pytest.raises(ConfigError, match="respawns"):
            TransientExecutor(_Flaky(), respawns=-1)

    def test_real_pool_results_unchanged(self):
        with TransientExecutor(LocalPoolExecutor(2)) as ex:
            assert run_cells(_cells(5), executor=ex) == run_cells(_cells(5))


# ---------------------------------------------------------------------------
# Scope activation
# ---------------------------------------------------------------------------

class TestScope:
    def test_scope_routes_run_cells(self, monkeypatch):
        monkeypatch.delenv("REPRO_SUPERVISE", raising=False)
        serial = run_cells(_cells(5), jobs=1)
        assert active_executor() is None
        with executor_scope("serial") as ex:
            assert active_executor() is ex
            assert run_cells(_cells(5), jobs=4) == serial
        assert active_executor() is None
        assert ex.dispatched == 5

    def test_scope_hard_teardown_on_error(self):
        created = []

        class Recording(SerialExecutor):
            def shutdown(self, kill=False):
                created.append(kill)
                super().shutdown(kill=kill)

        with pytest.raises(RuntimeError):
            with executor_scope(Recording()):
                raise RuntimeError("body blew up")
        assert created == [True]


# ---------------------------------------------------------------------------
# Spec grammar
# ---------------------------------------------------------------------------

class TestMakeExecutor:
    def test_kinds(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        assert isinstance(make_executor(""), SerialExecutor)
        pool = make_executor("pool", jobs=3)
        assert isinstance(pool, LocalPoolExecutor)
        assert pool.jobs == 3 and pool.chunk == 1
        assert make_executor("pool:chunk=8").chunk == 8
        assert make_executor("pool:chunk=auto").chunk == "auto"
        assert make_executor("chunked", jobs=2).chunk == "auto"
        wrapped = make_executor("transient:pool:chunk=4", jobs=2)
        assert isinstance(wrapped, TransientExecutor)
        assert wrapped.inner.chunk == 4

    def test_tcp_spec(self):
        from repro.harness.netqueue import WorkQueueExecutor

        ex = make_executor("tcp:127.0.0.1:0,spawn=0,lease=30")
        try:
            assert isinstance(ex, WorkQueueExecutor)
            assert ex.port > 0  # ephemeral port resolved at bind
            assert ex.lease_timeout == 30.0
        finally:
            ex.shutdown(kill=True)
        # A bare port gets the loopback host.
        ex = make_executor("tcp:0")
        try:
            assert ex.host == "127.0.0.1"
        finally:
            ex.shutdown(kill=True)

    @pytest.mark.parametrize("spec", [
        "bogus",
        "pool:chunk=x",
        "pool:frobnicate=1",
        "tcp:nonsense",
        "tcp:127.0.0.1:0,spawn=maybe",
        "tcp:127.0.0.1:0,mystery=1",
        "transient:",
    ])
    def test_bad_specs(self, spec):
        with pytest.raises(ConfigError):
            make_executor(spec)


# ---------------------------------------------------------------------------
# The dispatch-overhead microbenchmark (repro bench harness)
# ---------------------------------------------------------------------------

class TestHarnessBench:
    def test_rows_reuse_engine_bench_shape(self):
        from repro.perf.harnessbench import run_harness_bench

        rows = run_harness_bench(cells=40, jobs=2, modes=["serial", "chunked"])
        assert sorted(rows) == ["harness-chunked", "harness-serial"]
        for row in rows.values():
            assert row["events"] == 40 and row["events_per_sec"] > 0

    def test_speedup_recorded_and_checked(self):
        from repro.perf.harnessbench import check_speedup, run_harness_bench

        rows = {"harness-pool": {"events_per_sec": 100.0},
                "harness-chunked": {"events_per_sec": 500.0}}
        assert check_speedup(rows) == []
        rows["harness-chunked"]["events_per_sec"] = 110.0
        [message] = check_speedup(rows)
        assert "below the 1.3x floor" in message
        # And the live path records the measured ratio on the row.
        live = run_harness_bench(cells=60, jobs=2, modes=["pool", "chunked"])
        assert live["harness-chunked"]["speedup_vs_pool"] == pytest.approx(
            live["harness-chunked"]["events_per_sec"]
            / live["harness-pool"]["events_per_sec"]
        )

    def test_rejects_unknown_mode(self):
        from repro.perf.harnessbench import run_harness_bench, run_mode

        with pytest.raises(ConfigError, match="unknown harness bench mode"):
            run_harness_bench(cells=4, modes=["warp"])
        with pytest.raises(ConfigError, match="unknown harness bench mode"):
            run_mode("warp", 4, 1)

    def test_cli_writes_and_gates(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "BENCH_harness.json"
        assert main(["bench", "harness", "--cells", "40",
                     "--modes", "serial", "--out", str(out)]) == 0
        baseline = json.loads(out.read_text())
        assert "harness-serial" in baseline
        capsys.readouterr()
        # Same machine, generous tolerance: the gate passes against the
        # row we just wrote.
        assert main(["bench", "harness", "--cells", "40",
                     "--modes", "serial", "--out", "",
                     "--check", str(out), "--tolerance", "0.95"]) == 0
        assert "[ok]" in capsys.readouterr().err
