"""Tests for the deterministic fault-injection layer (repro.faults)."""

import os

import numpy as np
import pytest

from repro.errors import ConfigError, DeadlockError, RankFailedError
from repro.faults import (
    CheckpointPolicy,
    FaultSchedule,
    LinkDegradation,
    NfsBrownout,
    NodeCrash,
    StolenTimeBurst,
    default_schedule,
    faults_scope,
    resolve_schedule,
    run_with_restarts,
    simulate_completion,
    sweep_failure_checkpoint,
    young_interval,
)
from repro.platforms import VAYU
from repro.sim.rng import RandomStreams
from repro.smpi import MpiWorld


def ring_program(comm):
    """A few compute/exchange rounds; spans nodes at 16 ranks on Vayu."""
    buf = np.zeros(1024)
    for _ in range(5):
        yield from comm.compute(flops=1e7)
        yield from comm.sendrecv(
            (comm.rank + 1) % comm.size, buf.nbytes, (comm.rank - 1) % comm.size
        )
    return comm.rank


def io_program(comm):
    yield from comm.compute(flops=1e7)
    yield from comm.io_write(1 << 20)
    yield from comm.barrier()
    return comm.rank


class TestScheduleSpec:
    def test_parse_round_trips_through_spec(self):
        spec = (
            "crash:at=120,node=1;spot:at=300;crash:rate=1e-4;"
            "link:start=10,dur=5,bw=0.25,loss=0.05,latency=2e-4;"
            "steal:start=20,dur=10,frac=0.5;nfs:start=30,dur=60,factor=8"
        )
        sched = FaultSchedule.parse(spec)
        assert len(sched.crashes) == 2
        assert sched.crashes[0].kind == "node-crash"
        assert sched.crashes[1].kind == "spot-reclaim"
        assert sched.crash_rate == pytest.approx(1e-4)
        assert sched.links[0].bw_factor == pytest.approx(0.25)
        assert sched.steals[0].steal_frac == pytest.approx(0.5)
        assert sched.brownouts[0].slowdown == pytest.approx(8.0)
        again = FaultSchedule.parse(sched.spec())
        assert again.spec() == sched.spec()

    def test_events_sorted_by_time(self):
        sched = FaultSchedule([
            NodeCrash(at=50.0), NodeCrash(at=10.0),
            LinkDegradation(start=9.0, duration=1.0, bw_factor=0.5),
            LinkDegradation(start=3.0, duration=1.0, bw_factor=0.5),
        ])
        assert [c.at for c in sched.crashes] == [10.0, 50.0]
        assert [w.start for w in sched.links] == [3.0, 9.0]

    def test_window_active_is_half_open(self):
        w = LinkDegradation(start=10.0, duration=5.0, bw_factor=0.5)
        assert not w.active(9.999)
        assert w.active(10.0)
        assert w.active(14.999)
        assert not w.active(15.0)

    @pytest.mark.parametrize("bad", [
        "boom:at=1",                       # unknown kind
        "crash:at=-1",                     # negative time
        "crash:at=1,color=red",            # unknown field
        "crash",                           # missing fields
        "link:start=0,dur=0,bw=0.5",       # zero-length window
        "link:start=0,dur=1,bw=0",         # bw out of range
        "link:start=0,dur=1,loss=1.0",     # loss out of range
        "steal:start=0,dur=1,frac=1.0",    # frac out of range
        "nfs:start=0,dur=1,factor=0.5",    # speed-up is not a brown-out
        "crash:rate=-1",                   # negative rate
        "link:start;dur=1",                # not key=value
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ConfigError):
            FaultSchedule.parse(bad)

    def test_empty_forms_collapse_to_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert resolve_schedule(None) is None
        assert resolve_schedule("") is None
        assert resolve_schedule("none; off") is None
        assert resolve_schedule(FaultSchedule()) is None
        assert default_schedule() is None
        monkeypatch.setenv("REPRO_FAULTS", "0")
        assert default_schedule() is None

    def test_env_default_and_scope(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        with faults_scope("nfs:start=0,dur=10,factor=2") as sched:
            assert os.environ["REPRO_FAULTS"] == sched.spec()
            inner = default_schedule()
            assert inner is not None and inner.spec() == sched.spec()
        assert "REPRO_FAULTS" not in os.environ


class TestFaultFreePassThrough:
    def test_no_schedule_and_empty_schedule_bit_identical(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        base = MpiWorld(VAYU, 8, seed=3).launch(ring_program)
        empty = MpiWorld(VAYU, 8, seed=3, faults="").launch(ring_program)
        assert empty.wall_time == base.wall_time
        assert empty.resilience is None

    def test_inert_window_bit_identical(self, monkeypatch):
        """A schedule whose windows never overlap the run must not change
        a single bit of the result — hooks are pure queries."""
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        base = MpiWorld(VAYU, 16, seed=3).launch(ring_program)
        inert = MpiWorld(
            VAYU, 16, seed=3,
            faults="link:start=1e9,dur=1,bw=0.5;steal:start=1e9,dur=1,frac=0.5",
        ).launch(ring_program)
        assert inert.wall_time == base.wall_time
        assert inert.resilience is not None
        assert inert.resilience.completed
        assert not inert.resilience.injected

    def test_inert_crash_event_bit_identical(self, monkeypatch):
        """A crash scheduled long after completion is disarmed and pulled
        from the event heap before the final drain."""
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        base = MpiWorld(VAYU, 8, seed=3).launch(ring_program)
        inert = MpiWorld(VAYU, 8, seed=3, faults="crash:at=1e9").launch(ring_program)
        assert inert.wall_time == base.wall_time
        assert not inert.resilience.injected


class TestCrashInjection:
    def test_explicit_crash_raises_rank_failed(self):
        with pytest.raises(RankFailedError) as exc:
            MpiWorld(VAYU, 8, seed=3, faults="crash:at=1e-4,node=0").launch(
                ring_program
            )
        err = exc.value
        assert err.failed_ranks == tuple(range(8))  # all ranks on node 0
        assert err.failed_at == pytest.approx(1e-4)
        assert err.kind == "node-crash"
        assert err.resilience is not None
        assert err.resilience.killed_ranks == tuple(range(8))
        assert not err.resilience.completed
        (ev,) = err.resilience.injected
        assert ev.kind == "node-crash" and ev.ranks == tuple(range(8))

    def test_spot_reclaim_kind_propagates(self):
        with pytest.raises(RankFailedError) as exc:
            MpiWorld(VAYU, 16, seed=3, faults="spot:at=1e-4,node=1").launch(
                ring_program
            )
        err = exc.value
        assert err.kind == "spot-reclaim"
        # Only node 1's ranks die; node 0 survivors block on dead peers.
        assert err.failed_ranks == tuple(range(8, 16))

    def test_rank_failed_is_a_deadlock_subclass(self):
        """Callers that catch DeadlockError keep working."""
        with pytest.raises(DeadlockError):
            MpiWorld(VAYU, 8, seed=3, faults="crash:at=1e-4").launch(ring_program)

    def test_survivors_pending_ops_listed(self):
        with pytest.raises(RankFailedError) as exc:
            MpiWorld(
                VAYU, 16, seed=3, sanitize=True, faults="crash:at=1e-4,node=1"
            ).launch(ring_program)
        assert "pending operations" in str(exc.value)

    def test_sanitizer_distinguishes_injected_failure_from_deadlock(self):
        world = MpiWorld(
            VAYU, 16, seed=3, sanitize=True, faults="crash:at=1e-4,node=0"
        )
        with pytest.raises(RankFailedError):
            world.launch(ring_program)
        report = world.sanitizer._report
        checks = {(d.check, d.severity) for d in report.diagnostics}
        assert ("injected-rank-failure", "warning") in checks
        assert not any(c == "deadlock" for c, _ in checks)

    def test_poisson_crashes_deterministic_per_seed(self):
        def failed_at(seed):
            with pytest.raises(RankFailedError) as exc:
                MpiWorld(VAYU, 16, seed=seed, faults="crash:rate=500").launch(
                    ring_program
                )
            return exc.value.failed_at

        assert failed_at(3) == failed_at(3)
        assert failed_at(3) != failed_at(4)

    def test_explicit_crash_node_out_of_range(self):
        with pytest.raises(ConfigError):
            MpiWorld(VAYU, 8, seed=3, faults="crash:at=1e-4,node=99").launch(
                ring_program
            )


class TestDegradationWindows:
    def test_link_degradation_slows_internode_traffic(self):
        base = MpiWorld(VAYU, 16, seed=3).launch(ring_program)
        slow = MpiWorld(
            VAYU, 16, seed=3, faults="link:start=0,dur=1e9,bw=0.25,loss=0.2"
        ).launch(ring_program)
        assert slow.wall_time > base.wall_time
        kinds = {ev.kind for ev in slow.resilience.injected}
        assert kinds == {"link"}

    def test_steal_burst_slows_compute(self):
        base = MpiWorld(VAYU, 16, seed=3).launch(ring_program)
        slow = MpiWorld(
            VAYU, 16, seed=3, faults="steal:start=0,dur=1e9,frac=0.3"
        ).launch(ring_program)
        assert slow.wall_time > base.wall_time

    def test_nfs_brownout_slows_io(self):
        base = MpiWorld(VAYU, 8, seed=3).launch(io_program)
        slow = MpiWorld(
            VAYU, 8, seed=3, faults="nfs:start=0,dur=1e9,factor=4"
        ).launch(io_program)
        assert slow.wall_time > base.wall_time
        (ev,) = slow.resilience.injected
        assert ev.kind == "nfs"

    def test_windows_recorded_once_not_per_query(self):
        res = MpiWorld(
            VAYU, 16, seed=3, faults="link:start=0,dur=1e9,bw=0.5"
        ).launch(ring_program)
        assert len(res.resilience.injected) == 1


class TestCheckpointRestart:
    def test_policy_validation(self):
        with pytest.raises(ConfigError):
            CheckpointPolicy(0.0)
        with pytest.raises(ConfigError):
            CheckpointPolicy(1.0, checkpoint_cost=-1)

    def test_young_interval(self):
        assert young_interval(1e-4, 50.0) == pytest.approx(1000.0)
        with pytest.raises(ConfigError):
            young_interval(0.0, 50.0)

    def test_simulate_completion_no_failures(self):
        rng = np.random.default_rng(0)
        stats = simulate_completion(
            100.0, CheckpointPolicy(30.0, checkpoint_cost=5.0), 0.0, rng
        )
        # Three checkpoints mid-run; the final segment needs none.
        assert stats.restarts == 0 and stats.wasted_work == 0.0
        assert stats.checkpoint_overhead == pytest.approx(15.0)
        assert stats.completion_time == pytest.approx(115.0)

    def test_simulate_completion_with_failures_pays_restarts(self):
        stream = RandomStreams(1).stream("ckpt-test")
        policy = CheckpointPolicy(10.0, checkpoint_cost=1.0, restart_cost=2.0)
        stats = simulate_completion(200.0, policy, 0.02, stream)
        assert stats.restarts > 0
        assert stats.wasted_work > 0
        assert stats.completion_time > 200.0

    def test_simulate_completion_deterministic_per_stream(self):
        def run():
            stream = RandomStreams(7).stream("ckpt-test")
            return simulate_completion(
                500.0, CheckpointPolicy(20.0, 1.0, 5.0), 0.01, stream
            )

        assert run() == run()

    def test_frequent_checkpoints_beat_rare_under_high_failure_rate(self):
        def mean_completion(interval):
            total = 0.0
            for trial in range(16):
                stream = RandomStreams(trial).stream("ckpt-test")
                total += simulate_completion(
                    300.0, CheckpointPolicy(interval, 1.0, 2.0), 0.01, stream
                ).completion_time
            return total / 16

        assert mean_completion(20.0) < mean_completion(300.0)

    def test_run_with_restarts_completes_and_accounts(self):
        def prog(comm):
            for _ in range(10):
                yield from comm.compute(flops=1e7)
                yield from comm.barrier()
                yield from comm.checkpoint()
            return comm.rank

        policy = CheckpointPolicy(0.01, restart_cost=0.5)
        result = run_with_restarts(
            VAYU, 8, prog, faults="crash:rate=100", policy=policy, seed=3
        )
        rep = result.resilience
        assert rep.completed
        assert rep.restart_count > 0
        assert rep.checkpoints > 0
        assert rep.time_to_completion == pytest.approx(
            result.wall_time
            + rep.wasted_work
            + rep.restart_count * policy.restart_cost
        )
        assert rep.time_to_completion > result.wall_time
        text = rep.render()
        assert "restart" in text and "time-to-completion" in text

    def test_run_with_restarts_deterministic(self):
        def prog(comm):
            for _ in range(5):
                yield from comm.compute(flops=1e7)
                yield from comm.checkpoint()
            return comm.rank

        def run():
            res = run_with_restarts(
                VAYU, 8, prog, faults="crash:rate=150",
                policy=CheckpointPolicy(0.01, restart_cost=0.2), seed=5,
            )
            return (res.wall_time, res.resilience.restart_count,
                    res.resilience.time_to_completion)

        assert run() == run()

    def test_run_with_restarts_gives_up_on_permanent_failure(self):
        """An explicit crash:at repeats every attempt and can never
        complete; the harness must raise instead of looping forever."""
        with pytest.raises(RankFailedError) as exc:
            run_with_restarts(
                VAYU, 8, ring_program, faults="crash:at=1e-4",
                max_restarts=3, seed=3,
            )
        assert "no completion within 3 restart(s)" in str(exc.value)
        assert exc.value.resilience.restart_count == 4


class TestSweep:
    def test_sweep_grid_shape_and_render(self):
        res = sweep_failure_checkpoint(
            [0.01, 0.05], [10.0, 50.0], work=300.0,
            checkpoint_cost=1.0, restart_cost=2.0, trials=4, seed=1,
        )
        assert set(res.cells) == {
            (0.01, 10.0), (0.01, 50.0), (0.05, 10.0), (0.05, 50.0)
        }
        text = res.render()
        assert "rate\\interval" in text and "# best cell" in text
        d = res.to_dict()
        assert len(d["cells"]) == 4

    def test_sweep_jobs_parallel_identical_to_serial(self):
        kwargs = dict(
            work=300.0, checkpoint_cost=1.0, restart_cost=2.0,
            trials=8, seed=1,
        )
        serial = sweep_failure_checkpoint(
            [0.01, 0.05], [10.0, 50.0], jobs=1, **kwargs
        )
        parallel = sweep_failure_checkpoint(
            [0.01, 0.05], [10.0, 50.0], jobs=2, **kwargs
        )
        assert serial.render() == parallel.render()
        assert serial.cells == parallel.cells

    def test_sweep_validation(self):
        with pytest.raises(ConfigError):
            sweep_failure_checkpoint([], [1.0], work=10.0)
        with pytest.raises(ConfigError):
            sweep_failure_checkpoint([0.1], [1.0], work=10.0, trials=0)


class TestCli:
    def test_faults_sweep_command(self, capsys):
        from repro.cli import main

        rc = main([
            "faults", "sweep", "--rates", "0.01", "0.05",
            "--intervals", "10", "50", "--work", "300",
            "--checkpoint-cost", "1", "--restart-cost", "2",
            "--trials", "4",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "mean time-to-completion" in out and "# best cell" in out

    def test_faults_sweep_json(self, capsys):
        import json

        from repro.cli import main

        rc = main([
            "faults", "sweep", "--rates", "0.01", "--intervals", "10",
            "--work", "100", "--trials", "2", "--json",
        ])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["cells"][0]["rate"] == 0.01

    def test_run_faults_flag_banner(self, capsys):
        from repro.cli import main

        rc = main(["run", "fig3", "--faults", "link:start=1e9,dur=1,bw=0.5"])
        assert rc == 0
        assert "[faults: link:start=1000000000.0" in capsys.readouterr().out
