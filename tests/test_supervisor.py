"""Tests for the supervised, resumable sweep harness.

Covers the tentpole contracts of ``repro.harness.supervisor``:

* clean-run byte-identity — supervision + journal enabled must render
  every registered experiment byte-identically to a plain run;
* journal round-trip — a sweep killed after k of n cells and resumed
  from its journal renders byte-identically to an uninterrupted run,
  re-executing only the n−k missing cells;
* watchdog timeout, bounded retries, retry exhaustion and
  degrade-to-serial on a broken process pool;
* structured ``CellExecutionError`` surfacing (including the
  unsupervised ``BrokenProcessPool`` wrapping) and the CLI's
  0 / 3 / 1 exit-code contract.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.errors import CellExecutionError, ConfigError, VerificationError
from repro.harness import parallel
from repro.harness.journal import (
    RunJournal,
    decode_value,
    encode_value,
    load_journal,
    payload_hash,
    read_journal,
)
from repro.harness.parallel import Cell, cell_worker, run_cells
from repro.harness.supervisor import (
    SupervisorPolicy,
    cell_namespace,
    run_cells_supervised,
    supervision_scope,
)


# ---------------------------------------------------------------------------
# Module-level cell workers (pool workers must be able to resolve them)
# ---------------------------------------------------------------------------

@cell_worker("sup_square")
def _sup_square(x):
    return {"v": float(x * x)}


@cell_worker("sup_flaky")
def _sup_flaky(x, fail_above, arm_path):
    """Deterministic computation that raises for x >= fail_above while
    the arm file exists — the 'sweep killed midway' stand-in."""
    if os.path.exists(arm_path) and x >= fail_above:
        raise RuntimeError(f"flaky cell {x}")
    return {"v": float(x * x)}


@cell_worker("sup_raise")
def _sup_raise(x):
    raise RuntimeError(f"boom {x}")


@cell_worker("sup_raise_repro")
def _sup_raise_repro(x):
    raise VerificationError(f"deterministic failure {x}")


@cell_worker("sup_hang")
def _sup_hang(x):
    time.sleep(60.0)
    return {"v": float(x)}


@cell_worker("sup_sleep_once")
def _sup_sleep_once(x, marker):
    """Hangs on its first execution (claims the marker), instant after."""
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return {"v": float(x)}
    os.close(fd)
    time.sleep(60.0)
    return {"v": float(x)}


@cell_worker("sup_die_once")
def _sup_die_once(x, marker):
    """First pool execution kills its worker process; any later
    execution (fresh pool or inline degrade) succeeds."""
    if parallel._IS_POOL_WORKER:
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            pass
        else:
            os.close(fd)
            os._exit(9)
    return {"v": float(x * 3)}


@cell_worker("sup_die_always")
def _sup_die_always(x):
    """Kills every pool worker it runs in (inline execution survives)."""
    if parallel._IS_POOL_WORKER:
        os._exit(9)
    return {"v": float(x)}


# ---------------------------------------------------------------------------
# Journal primitives
# ---------------------------------------------------------------------------

class TestJournal:
    def test_typed_encoding_round_trip(self):
        values = [
            {"a": 1.5, "b": [1, 2, (3, "x")]},
            {1: 0.25, 1024: 3.5},          # OSU-style int-keyed curve
            ("cg", "Vayu", 16),
            {"__tuple__": "collision-safe"},
            [float("inf"), -0.0, 1e-300],
        ]
        for v in values:
            assert decode_value(json.loads(json.dumps(encode_value(v)))) == v

    def test_payload_hash_stable_and_discriminating(self):
        h = payload_hash("npb_point", ("cg", "Vayu", 16, 0))
        assert h == payload_hash("npb_point", ("cg", "Vayu", 16, 0))
        assert h != payload_hash("npb_point", ("cg", "Vayu", 16, 1))
        assert h != payload_hash("osu_curve", ("cg", "Vayu", 16, 0))

    def test_journal_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.record_cell("fig1", ("Vayu",), "osu_curve", "abc", {1: 2.5})
            journal.record_event("fig1", ("DCC",), "retry", cause="timeout")
            journal.record_cell("fig2", ("Vayu",), "osu_curve", "def", {4: 1.25})
        entries = load_journal(path)
        assert set(entries) == {("fig1", ("Vayu",)), ("fig2", ("Vayu",))}
        assert entries[("fig1", ("Vayu",))].result == {1: 2.5}
        assert entries[("fig1", ("Vayu",))].payload_hash == "abc"

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.record_cell("ns", (1,), "w", "h", {"v": 1.0})
        with open(path, "a") as fh:
            fh.write('{"kind": "cell", "ns": "ns", "key"')  # killed mid-write
        entries = load_journal(path)
        assert set(entries) == {("ns", (1,))}

    def test_corrupt_middle_line_skipped_not_fatal(self, tmp_path):
        # A mid-file corrupted line loses only that record: the cells
        # around it stay loadable and the skip carries a reason.
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.record_cell("ns", (1,), "w", "aa" * 16, {"v": 1.0})
        with open(path, "a") as fh:
            fh.write("not json\n")
        with RunJournal(path) as journal:
            journal.record_cell("ns", (2,), "w", "bb" * 16, {"v": 2.0})
        read = read_journal(path)
        assert set(read.entries) == {("ns", (1,)), ("ns", (2,))}
        [skip] = read.skipped
        assert skip.lineno == 2
        assert "unparseable" in skip.reason
        # load_journal (the resume path) must not abort either.
        assert set(load_journal(path)) == {("ns", (1,)), ("ns", (2,))}

    def test_malformed_cell_record_skipped_with_reason(self, tmp_path):
        # A parseable cell record missing a required field is skipped
        # with a reason, never a crash.
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.record_cell("ns", (1,), "w", "aa" * 16, {"v": 1.0})
        with open(path, "a") as fh:
            fh.write('{"kind": "cell", "v": 2, "ns": "ns", "key": [3]}\n')
        read = read_journal(path)
        assert set(read.entries) == {("ns", (1,))}
        [skip] = read.skipped
        assert skip.lineno == 2 and skip.version == 2
        assert "malformed" in skip.reason

    def test_close_is_idempotent(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.record_cell("ns", (1,), "w", "aa" * 16, {"v": 1.0})
        journal.close()
        journal.close()  # double-close must not raise
        with RunJournal(tmp_path / "run2.jsonl") as journal:
            journal.record_cell("ns", (1,), "w", "aa" * 16, {"v": 1.0})
        journal.close()  # close-after-__exit__ must not raise
        with pytest.raises(ConfigError, match="closed"):
            journal.record_cell("ns", (2,), "w", "bb" * 16, {"v": 2.0})

    def test_missing_resume_journal_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="not found"):
            load_journal(tmp_path / "nope.jsonl")


# ---------------------------------------------------------------------------
# Supervised execution semantics
# ---------------------------------------------------------------------------

class TestSupervisedExecution:
    def test_clean_run_matches_plain_run_cells(self, tmp_path):
        cells = [Cell((i,), "sup_square", (i,)) for i in range(5)]
        plain = run_cells(cells, jobs=1)
        report = run_cells_supervised(
            cells, jobs=2,
            policy=SupervisorPolicy(journal=tmp_path / "j.jsonl"),
        )
        assert report.results == plain
        assert list(report.results) == list(plain)
        assert not report.failures and not report.retries
        assert report.stats.ok == 5 and report.stats.failed == 0

    def test_duplicate_keys_rejected(self):
        cells = [Cell((1,), "sup_square", (1,)), Cell((1,), "sup_square", (2,))]
        with pytest.raises(ConfigError, match="duplicate cell keys"):
            run_cells_supervised(cells, policy=SupervisorPolicy())

    def test_unknown_worker_stays_fatal(self):
        with pytest.raises(ConfigError, match="unknown cell worker"):
            run_cells_supervised(
                [Cell((1,), "no_such_worker")], policy=SupervisorPolicy()
            )

    def test_worker_exception_exhausts_retries(self):
        cells = [Cell((0,), "sup_square", (0,)), Cell((1,), "sup_raise", (1,))]
        report = run_cells_supervised(
            cells, jobs=1, policy=SupervisorPolicy(retries=1)
        )
        assert report.results == {(0,): {"v": 0.0}}
        err = report.failures[(1,)]
        assert isinstance(err, CellExecutionError)
        assert err.cause == "worker-exception"
        assert err.attempts == 2          # first try + one retry
        assert "boom 1" in err.detail and "RuntimeError" in err.detail
        assert report.retries[(1,)] == ("worker-exception", "worker-exception")
        assert report.stats.failed == 1 and report.stats.ok == 1

    def test_repro_errors_never_retried(self):
        report = run_cells_supervised(
            [Cell((1,), "sup_raise_repro", (1,))],
            jobs=1, policy=SupervisorPolicy(retries=3),
        )
        err = report.failures[(1,)]
        assert err.attempts == 1          # deterministic error: no retry
        assert "VerificationError" in err.detail

    def test_hung_cell_times_out_and_sweep_survives(self):
        cells = [Cell(("hang",), "sup_hang", (0,))] + [
            Cell((i,), "sup_square", (i,)) for i in range(3)
        ]
        report = run_cells_supervised(
            cells, jobs=2, policy=SupervisorPolicy(timeout=1.0, retries=0)
        )
        err = report.failures[("hang",)]
        assert err.cause == "timeout"
        assert "watchdog" in err.detail
        assert report.results[(2,)] == {"v": 4.0}
        assert report.stats.ok == 3 and report.stats.failed == 1

    def test_hung_cell_retried_then_succeeds(self, tmp_path):
        marker = str(tmp_path / "slept")
        cells = [Cell(("once",), "sup_sleep_once", (7, marker))] + [
            Cell((i,), "sup_square", (i,)) for i in range(2)
        ]
        report = run_cells_supervised(
            cells, jobs=2, policy=SupervisorPolicy(timeout=1.5, retries=1)
        )
        assert not report.failures
        assert report.results[("once",)] == {"v": 7.0}
        assert report.retries[("once",)] == ("timeout",)
        assert report.stats.retried == 1

    def test_broken_pool_degrades_to_serial(self, tmp_path):
        marker = str(tmp_path / "died")
        cells = [Cell((i,), "sup_die_once", (i, marker)) for i in range(4)]
        report = run_cells_supervised(
            cells, jobs=2, policy=SupervisorPolicy(retries=0)
        )
        assert not report.failures
        assert report.results == {(i,): {"v": float(i * 3)} for i in range(4)}
        assert report.stats.degraded >= 1
        assert os.path.exists(marker)

    def test_chaos_kill_env_hook(self, tmp_path, monkeypatch):
        marker = tmp_path / "chaos"
        monkeypatch.setenv("REPRO_CHAOS_KILL", str(marker))
        cells = [Cell((i,), "sup_square", (i,)) for i in range(4)]
        report = run_cells_supervised(cells, jobs=2, policy=SupervisorPolicy())
        assert report.results == {(i,): {"v": float(i * i)} for i in range(4)}
        assert not report.failures
        assert report.stats.degraded >= 1
        assert marker.exists()

    def test_unsupervised_broken_pool_names_cell(self, monkeypatch):
        monkeypatch.delenv("REPRO_SUPERVISE", raising=False)
        cells = [Cell((i,), "sup_die_always", (i,)) for i in range(2)]
        with pytest.raises(CellExecutionError) as excinfo:
            run_cells(cells, jobs=2)
        assert excinfo.value.cause == "worker-death"
        assert excinfo.value.key in {(0,), (1,)}
        assert "supervision" in excinfo.value.detail


# ---------------------------------------------------------------------------
# Journal resume: interrupted sweep == uninterrupted sweep
# ---------------------------------------------------------------------------

class TestResume:
    def test_interrupted_then_resumed_is_byte_identical(self, tmp_path):
        arm = tmp_path / "armed"
        jpath = tmp_path / "run.jsonl"
        n, k = 6, 3
        cells = [Cell((i,), "sup_flaky", (i, k, str(arm))) for i in range(n)]

        clean = run_cells_supervised(
            cells, jobs=1, policy=SupervisorPolicy(retries=0)
        )
        assert len(clean.results) == n

        # "Kill" the sweep after k cells: arm the failure, run journaled.
        arm.touch()
        interrupted = run_cells_supervised(
            cells, jobs=1, policy=SupervisorPolicy(retries=0, journal=jpath)
        )
        assert len(interrupted.results) == k
        assert len(interrupted.failures) == n - k
        assert all(
            err.cause == "worker-exception"
            for err in interrupted.failures.values()
        )

        # Resume: only the n-k missing cells re-execute.
        arm.unlink()
        resumed = run_cells_supervised(
            cells, jobs=1,
            policy=SupervisorPolicy(retries=0, journal=jpath, resume=jpath),
        )
        assert resumed.stats.journal_hits == k
        assert not resumed.failures
        assert repr(resumed.results) == repr(clean.results)

    def test_payload_hash_mismatch_forces_re_execution(self, tmp_path):
        jpath = tmp_path / "run.jsonl"
        with RunJournal(jpath) as journal:
            journal.record_cell(
                "", (2,), "sup_square", "stale-hash", {"v": -1.0}
            )
        report = run_cells_supervised(
            [Cell((2,), "sup_square", (2,))],
            jobs=1, policy=SupervisorPolicy(resume=jpath),
        )
        # The stale entry must not be trusted: the cell re-runs.
        assert report.stats.journal_hits == 0
        assert report.results[(2,)] == {"v": 4.0}

    def test_namespaces_isolate_identical_keys(self, tmp_path):
        jpath = tmp_path / "run.jsonl"
        cells_a = [Cell((1,), "sup_square", (3,))]
        with supervision_scope(SupervisorPolicy(journal=jpath)) as scope:
            with cell_namespace("expA"):
                run_cells(cells_a, jobs=1)
        entries = load_journal(jpath)
        assert set(entries) == {("expA", (1,))}
        # Same key under a different namespace is NOT resumed from expA.
        with supervision_scope(
            SupervisorPolicy(journal=jpath, resume=jpath)
        ) as scope:
            with cell_namespace("expB"):
                run_cells(cells_a, jobs=1)
            assert scope.stats.journal_hits == 0


# ---------------------------------------------------------------------------
# Batch-level integration: run_batch, FAILED rendering, exit codes
# ---------------------------------------------------------------------------

def _experiment_ids():
    from repro.harness.experiments import EXPERIMENTS

    return sorted(EXPERIMENTS)


@pytest.mark.parametrize("experiment_id", _experiment_ids())
def test_supervised_experiment_byte_identical(experiment_id, tmp_path):
    """Acceptance: every registered experiment rendered with
    supervision + journal enabled is byte-identical to a plain run."""
    from repro.harness.runner import run_batch

    plain = run_batch([experiment_id], quick=True, seed=2)
    supervised = run_batch(
        [experiment_id], quick=True, seed=2,
        supervisor=SupervisorPolicy(journal=tmp_path / "j.jsonl"),
    )
    assert supervised.render() == plain.render()
    assert not supervised.failures
    assert supervised.harness_summary is not None
    assert supervised.harness_summary.startswith("harness: ")


def test_batch_resume_skips_journaled_cells(tmp_path):
    """Resuming a fully journaled batch re-executes no sweep cells and
    renders byte-identically."""
    from repro.harness.runner import run_batch

    jpath = tmp_path / "batch.jsonl"
    plain = run_batch(["fig1", "tab3"], quick=True, seed=2)
    first = run_batch(
        ["fig1", "tab3"], quick=True, seed=2,
        supervisor=SupervisorPolicy(journal=jpath),
    )
    assert first.render() == plain.render()

    calls: list[tuple] = []
    real_execute = parallel._execute

    def _poisoned(cell):
        calls.append(cell.key)
        return real_execute(cell)

    parallel._execute = _poisoned
    try:
        resumed = run_batch(
            ["fig1", "tab3"], quick=True, seed=2,
            supervisor=SupervisorPolicy(journal=jpath, resume=jpath),
        )
    finally:
        parallel._execute = real_execute
    assert calls == []  # every cell came from the journal
    assert resumed.render() == plain.render()
    assert "from journal" in resumed.harness_summary


def test_batch_partial_failure_renders_and_continues(monkeypatch, capsys):
    """A failing experiment becomes FAILED(<cause>); the batch keeps
    running and the CLI exits 3."""
    from repro.cli import main
    from repro.harness.experiments import EXPERIMENTS, ExperimentOutput

    def _failing_experiment(quick=True, seed=0, jobs=1, sim_iters=None):
        points = run_cells([Cell((1,), "sup_raise", (1,))], jobs=jobs)
        return ExperimentOutput("failex", "never reached", {}, str(points))

    monkeypatch.setitem(EXPERIMENTS, "failex", _failing_experiment)
    rc = main(["run", "failex", "tab1", "--supervise", "--retries", "0"])
    out = capsys.readouterr().out
    assert rc == 3
    assert "=== failex: FAILED(worker-exception) ===" in out
    assert "FAILED(worker-exception): cell (1,)" in out
    assert "tab1: Experimental platforms" in out  # batch kept going


def test_faults_sweep_partial_failure_grid(monkeypatch, capsys):
    """Failed sweep cells render as FAILED(<cause>) grid entries; the
    command exits 3 and the rest of the grid survives."""
    import repro.faults.checkpoint as checkpoint
    from repro.cli import main

    real = checkpoint.simulate_completion

    def _sabotaged(work, policy, rate, stream):
        if rate >= 0.05:
            raise RuntimeError("sabotaged cell")
        return real(work, policy, rate, stream)

    monkeypatch.setattr(checkpoint, "simulate_completion", _sabotaged)
    rc = main([
        "faults", "sweep", "--rates", "0.01", "0.05", "--intervals", "10",
        "--work", "100", "--trials", "2",
        "--supervise", "--retries", "0",
    ])
    out = capsys.readouterr().out
    assert rc == 3
    assert "FAILED(worker-exception)" in out
    assert "# best cell: rate=0.01" in out
    assert "# failed cell: rate=0.05" in out


def test_faults_sweep_resume_byte_identical(tmp_path, monkeypatch):
    """Acceptance: a sweep interrupted after k of n cells and resumed
    via the journal renders byte-identically to an uninterrupted one."""
    import repro.faults.checkpoint as checkpoint
    from repro.faults.sweep import sweep_failure_checkpoint

    kwargs = dict(
        work=100.0, checkpoint_cost=1.0, restart_cost=2.0, trials=2, seed=3
    )
    rates, intervals = [0.01, 0.05], [10.0, 25.0]
    jpath = tmp_path / "sweep.jsonl"

    clean = sweep_failure_checkpoint(rates, intervals, **kwargs)

    real = checkpoint.simulate_completion

    def _sabotaged(work, policy, rate, stream):
        if rate >= 0.05:
            raise RuntimeError("interrupted")
        return real(work, policy, rate, stream)

    monkeypatch.setattr(checkpoint, "simulate_completion", _sabotaged)
    interrupted = sweep_failure_checkpoint(
        rates, intervals, **kwargs,
        supervisor=SupervisorPolicy(retries=0, journal=jpath),
    )
    assert len(interrupted.cells) == 2 and len(interrupted.failures) == 2
    monkeypatch.setattr(checkpoint, "simulate_completion", real)

    resumed = sweep_failure_checkpoint(
        rates, intervals, **kwargs,
        supervisor=SupervisorPolicy(retries=0, journal=jpath, resume=jpath),
    )
    assert not resumed.failures
    assert resumed.render() == clean.render()
    assert resumed.to_dict() == clean.to_dict()
    assert "2 from journal" in resumed.harness_summary


def test_cli_exit_codes_documented_in_help():
    from repro.cli import build_parser

    text = build_parser().format_help()
    assert "exit codes" in text
    assert "3 partial" in text and "1 fatal" in text


def test_env_supervision_is_invisible_on_clean_runs(monkeypatch):
    monkeypatch.setenv("REPRO_SUPERVISE", "1")
    cells = [Cell((i,), "sup_square", (i,)) for i in range(4)]
    supervised = run_cells(cells, jobs=2)
    monkeypatch.delenv("REPRO_SUPERVISE")
    plain = run_cells(cells, jobs=1)
    assert supervised == plain


# ---------------------------------------------------------------------------
# Journal format v2: versioning, wide hashes, code fingerprints
# ---------------------------------------------------------------------------

class TestJournalFormatV2:
    def test_records_carry_version_and_wide_hash(self, tmp_path):
        jpath = tmp_path / "run.jsonl"
        run_cells_supervised(
            [Cell((3,), "sup_square", (3,))],
            jobs=1, policy=SupervisorPolicy(journal=jpath),
        )
        (rec,) = [json.loads(l) for l in jpath.read_text().splitlines()]
        assert rec["v"] == 2
        assert len(rec["hash"]) == 32
        # sup_square is registered from this test module, outside the
        # static index, so the record carries no code fingerprint.
        assert "code" not in rec

    def test_payload_hash_is_32_hex(self):
        digest = payload_hash("sup_square", (3,))
        assert len(digest) == 32
        int(digest, 16)  # hex

    def test_v1_journal_still_resumes(self, tmp_path):
        """A v1 record (16-char hash, no code field) is honoured."""
        jpath = tmp_path / "v1.jsonl"
        digest16 = payload_hash("sup_square", (5,))[:16]
        jpath.write_text(json.dumps({
            "kind": "cell", "v": 1, "ns": "",
            "key": {"__tuple__": [5]},
            "worker": "sup_square", "hash": digest16,
            "result": {"v": 25.0},
        }) + "\n")
        report = run_cells_supervised(
            [Cell((5,), "sup_square", (5,))],
            jobs=1, policy=SupervisorPolicy(resume=jpath),
        )
        assert report.stats.journal_hits == 1
        assert report.results[(5,)] == {"v": 25.0}

    def test_newer_version_skipped_with_reason(self, tmp_path):
        from repro.harness.journal import read_journal

        jpath = tmp_path / "future.jsonl"
        digest = payload_hash("sup_square", (4,))
        jpath.write_text(json.dumps({
            "kind": "cell", "v": 99, "ns": "",
            "key": {"__tuple__": [4]},
            "worker": "sup_square", "hash": digest,
            "result": {"v": -1.0}, "frobnicate": True,
        }) + "\n")
        read = read_journal(jpath)
        assert read.entries == {}
        (skip,) = read.skipped
        assert skip.lineno == 1 and skip.version == 99
        assert "newer than supported" in skip.reason
        # And resume re-simulates instead of crashing or trusting it.
        report = run_cells_supervised(
            [Cell((4,), "sup_square", (4,))],
            jobs=1, policy=SupervisorPolicy(resume=jpath),
        )
        assert report.stats.journal_hits == 0
        assert report.results[(4,)] == {"v": 16.0}

    def test_non_integer_version_skipped_with_reason(self, tmp_path):
        from repro.harness.journal import read_journal

        jpath = tmp_path / "odd.jsonl"
        jpath.write_text(json.dumps({
            "kind": "cell", "v": "two", "ns": "",
            "key": {"__tuple__": [1]},
            "worker": "sup_square", "hash": "x", "result": {},
        }) + "\n")
        read = read_journal(jpath)
        assert read.entries == {}
        (skip,) = read.skipped
        assert "non-integer format version" in skip.reason

    def test_hash_matches_semantics(self):
        from repro.harness.journal import hash_matches

        digest = "ab" * 16
        assert hash_matches(digest, digest)
        assert hash_matches(digest[:16], digest)      # v1 prefix
        assert not hash_matches(digest[:15], digest)  # wrong width
        assert not hash_matches("cd" * 16, digest)
        assert not hash_matches("cd" * 8, digest)

    def test_hash_matches_rejects_non_hex_entries(self):
        # A corrupted journal value must never false-positive into a
        # resume hit: both the exact and the v1-prefix path demand a
        # lowercase-hex, even-length stored digest.
        from repro.harness.journal import hash_matches

        digest = "ab" * 16
        assert not hash_matches("zz" * 8, digest)            # non-hex, 16 chars
        assert not hash_matches("AB" * 16, digest)           # uppercase hex
        assert not hash_matches(digest[:16].upper(), digest)
        assert not hash_matches("", digest)                  # empty
        assert not hash_matches(digest + "f", digest + "f")  # odd length
        # Even a degenerate "digest" argument cannot make a non-hex
        # entry match itself.
        assert not hash_matches("not-a-digest!!", "not-a-digest!!")


class TestCodeFingerprintResume:
    """Resume is keyed by code identity for statically known workers."""

    CELL = Cell(
        ("r", 0.001), "faults_point",
        (0.001, 300.0, 600.0, 5.0, 10.0, 1, 1),
    )

    def test_journal_records_code_for_registered_worker(self, tmp_path):
        from repro.analysis.static import worker_fingerprint

        jpath = tmp_path / "fp.jsonl"
        run_cells_supervised(
            [self.CELL], jobs=1, policy=SupervisorPolicy(journal=jpath),
        )
        (rec,) = [json.loads(l) for l in jpath.read_text().splitlines()]
        assert rec["code"] == worker_fingerprint("faults_point")
        assert len(rec["code"]) == 32

    def test_matching_fingerprint_resumes_byte_identically(self, tmp_path):
        jpath = tmp_path / "fp.jsonl"
        clean = run_cells_supervised(
            [self.CELL], jobs=1, policy=SupervisorPolicy(journal=jpath),
        )
        resumed = run_cells_supervised(
            [self.CELL], jobs=1, policy=SupervisorPolicy(resume=jpath),
        )
        assert resumed.stats.journal_hits == 1
        assert repr(resumed.results) == repr(clean.results)

    def test_code_mismatch_forces_re_simulation(self, tmp_path):
        jpath = tmp_path / "fp.jsonl"
        run_cells_supervised(
            [self.CELL], jobs=1, policy=SupervisorPolicy(journal=jpath),
        )
        (rec,) = [json.loads(l) for l in jpath.read_text().splitlines()]
        rec["code"] = "0" * 32  # the worker's code has "changed"
        rec["result"] = {"completion_time": -1.0}
        jpath.write_text(json.dumps(rec) + "\n")
        report = run_cells_supervised(
            [self.CELL], jobs=1, policy=SupervisorPolicy(resume=jpath),
        )
        # The stale-code entry must not be trusted: the cell re-runs
        # and produces the genuine result.
        assert report.stats.journal_hits == 0
        assert report.results[self.CELL.key]["completion_time"] > 0

    def test_entry_without_code_still_resumes(self, tmp_path):
        """A v2 entry from a run that couldn't fingerprint (or a v1
        journal) is accepted — absence of identity is not a mismatch."""
        jpath = tmp_path / "fp.jsonl"
        run_cells_supervised(
            [self.CELL], jobs=1, policy=SupervisorPolicy(journal=jpath),
        )
        (rec,) = [json.loads(l) for l in jpath.read_text().splitlines()]
        del rec["code"]
        jpath.write_text(json.dumps(rec) + "\n")
        report = run_cells_supervised(
            [self.CELL], jobs=1, policy=SupervisorPolicy(resume=jpath),
        )
        assert report.stats.journal_hits == 1
