"""Tests for the platform models and virtualisation layer."""

import dataclasses

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.platforms import DCC, EC2, VAYU, all_platforms, get_platform, platform_table
from repro.platforms.base import Platform, RankComputeModel
from repro.platforms.registry import register_platform
from repro.sim import Engine
from repro.smpi.mapping import Placement, place_ranks
from repro.virt import NoHypervisor, OsNoiseModel, VmwareEsx, XenHvm
from repro.virt.vmimage import ApplicationBinary, VmImage


class TestRegistry:
    def test_lookup_case_insensitive(self):
        assert get_platform("VAYU") is VAYU
        assert get_platform("dcc") is DCC

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            get_platform("azure")

    def test_all_platforms_in_paper_order(self):
        assert [p.name for p in all_platforms()] == ["DCC", "EC2", "Vayu"]

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError):
            register_platform(dataclasses.replace(VAYU))

    def test_table1_matches_paper_values(self):
        table = platform_table()
        for fragment in (
            "Intel Xeon E5520", "Intel Xeon X5570", "2.27GHz", "2.93GHz",
            "8MB (shared)", "40GB", "20GB", "24GB", "Lustre", "NFS",
            "QDR IB", "1GigE", "10 GigE",
        ):
            assert fragment in table, fragment


class TestComputeModel:
    def _platform(self, spec, nprocs, placement=None):
        plat = Platform(spec, Engine(seed=1))
        place_ranks(plat, nprocs, placement)
        return plat

    def test_serial_ratio_tracks_clock(self):
        pv = self._platform(VAYU, 1)
        pd = self._platform(DCC, 1)
        tv = pv.compute_model(0).seconds(1e9, 0.0)[0]
        td = pd.compute_model(0).seconds(1e9, 0.0)[0]
        assert td / tv == pytest.approx((2.93 * 1.10) / 2.27, rel=1e-6)

    def test_memory_bandwidth_shared_per_socket(self):
        solo = self._platform(VAYU, 1).compute_model(0)
        full = self._platform(VAYU, 8).compute_model(0)
        t_solo = solo.seconds(0.0, 1e9)[0]
        t_full = full.seconds(0.0, 1e9)[0]
        assert t_full == pytest.approx(4 * t_solo, rel=1e-6)

    def test_cache_residency_cuts_traffic(self):
        model = RankComputeModel(1e9, 1e9, cache_share=8e6)
        big, _ = model.seconds(0.0, 1e8, working_set=1e9)
        small, _ = model.seconds(0.0, 1e8, working_set=9e6)
        assert small < 0.3 * big

    def test_miss_floor(self):
        model = RankComputeModel(1e9, 1e9, cache_share=8e6)
        assert model.miss_factor(1e3) == RankComputeModel.MISS_FLOOR

    def test_numa_penalty_only_when_masked_and_spanning(self):
        masked = self._platform(DCC, 8).compute_model(0)
        affinity = self._platform(VAYU, 8).compute_model(0)
        # Same share arithmetic, but DCC's bandwidth carries the penalty
        # (plus the clock difference handled separately).
        dcc_bw = masked.mem_bw
        vayu_bw = affinity.mem_bw
        assert dcc_bw < (11.5e9 / 4) * 0.999
        assert vayu_bw == pytest.approx(16e9 / 4)

    def test_single_rank_platform_no_penalty(self):
        solo = self._platform(DCC, 1).compute_model(0)
        assert solo.mem_bw == pytest.approx(11.5e9)

    def test_random_access_noise_exceeds_stream(self):
        plat = self._platform(DCC, 8)
        rnd = [plat.compute_seconds(0, 1e7, 2e8, 1e9, "random") for _ in range(60)]
        stream = [plat.compute_seconds(0, 1e7, 2e8, 1e9, "stream") for _ in range(60)]
        assert np.mean(rnd) > np.mean(stream)

    def test_unknown_access_pattern_rejected(self):
        plat = self._platform(DCC, 8)
        with pytest.raises(ConfigError):
            plat.compute_seconds(0, 1e7, 1e8, access="strided")

    def test_unplaced_rank_rejected(self):
        plat = Platform(VAYU, Engine())
        with pytest.raises(ConfigError):
            plat.compute_model(0)

    def test_shm_pressure_worst_of_nodes(self):
        plat = self._platform(DCC, 8)
        assert plat.worst_shm_pressure() < 1.0
        empty = Platform(VAYU, Engine())
        assert empty.worst_shm_pressure() == 1.0


class TestHypervisors:
    def test_base_hypervisor_is_transparent(self):
        hv = NoHypervisor()
        rng = np.random.default_rng(0)
        assert hv.net_extra_latency(rng) == 0.0
        assert hv.compute_jitter(rng, 1.0) == 0.0
        assert not hv.masks_numa

    def test_esx_latency_has_heavy_tail(self):
        hv = VmwareEsx()
        rng = np.random.default_rng(1)
        draws = np.array([hv.net_extra_latency(rng) for _ in range(4000)])
        assert draws.min() >= hv.switch_latency
        assert draws.max() > 5 * np.median(draws)  # the spike tail

    def test_xen_latency_stable(self):
        hv = XenHvm()
        rng = np.random.default_rng(1)
        draws = np.array([hv.net_extra_latency(rng) for _ in range(4000)])
        assert draws.std() / draws.mean() < 0.5

    def test_system_time_attribution_ordering(self):
        assert VmwareEsx().system_time_share > XenHvm().system_time_share
        assert XenHvm().system_time_share > NoHypervisor().system_time_share

    def test_noise_model_validation(self):
        with pytest.raises(ConfigError):
            OsNoiseModel(frac=-0.1)
        with pytest.raises(ConfigError):
            OsNoiseModel(spike_prob=2.0)

    def test_noise_zero_duration(self):
        assert OsNoiseModel().sample(np.random.default_rng(0), 0.0) == 0.0

    def test_noise_draw_count_independent_of_spike_prob(self):
        """Regression: ``sample`` must consume the same number of draws
        whether or not the spike branch is taken, so changing a
        platform's ``spike_prob`` cannot shift every later sample of a
        shared stream."""
        def draws(model):
            class Counting:
                def __init__(self):
                    self.rng = np.random.default_rng(0)
                    self.count = 0
                def random(self):
                    self.count += 1
                    return self.rng.random()
                def exponential(self, *a):
                    self.count += 1
                    return self.rng.exponential(*a)
                def standard_exponential(self):
                    self.count += 1
                    return self.rng.standard_exponential()
            rng = Counting()
            model.sample(rng, 1.0)
            return rng.count

        assert draws(OsNoiseModel(spike_prob=0.0)) == \
            draws(OsNoiseModel(spike_prob=0.9))

    def test_noise_spike_stream_isolates_main_stream(self):
        """With a dedicated ``spike_rng``, the main stream's consumption
        is identical across spike settings, draw for draw."""
        for prob in (0.0, 1.0):
            main = np.random.default_rng(7)
            spikes = np.random.default_rng(11)
            model = OsNoiseModel(frac=1.0, spike_prob=prob)
            for _ in range(3):
                model.sample(main, 1.0, spike_rng=spikes)
            # After three samples the main stream has advanced exactly
            # three exponential draws regardless of spike probability.
            check = np.random.default_rng(7)
            for _ in range(3):
                check.exponential(1.0)
            assert main.exponential(1.0) == check.exponential(1.0)


class TestVmImage:
    def _image(self, isa=frozenset({"sse4"})):
        return VmImage(
            name="img",
            os_name="CentOS 5.7",
            binaries=(ApplicationBinary("app", "1.0", "icc", isa_flags=isa,
                                        requires=("lib",)),),
        )

    def test_missing_dependencies_detected(self):
        assert self._image().missing_dependencies() == {"app": ["lib"]}

    def test_isa_check(self):
        img = self._image()
        assert img.check_isa({"sse2", "sse3"}) == {"app": ["sse4"]}
        assert img.check_isa({"sse2", "sse4"}) == {}

    def test_find_binary(self):
        img = self._image()
        assert img.find_binary("app").version == "1.0"
        from repro.errors import CloudError

        with pytest.raises(CloudError):
            img.find_binary("ghost")


class TestPlacementInteractions:
    def test_finalize_required_after_placement(self):
        plat = Platform(VAYU, Engine())
        place_ranks(plat, 4)
        assert plat.compute_model(3) is not None

    def test_cyclic_ec2_gives_full_cores(self):
        plat = Platform(EC2, Engine())
        place_ranks(plat, 8, Placement(strategy="cyclic", num_nodes=4))
        # 2 ranks per node: no SMT sharing.
        assert plat.compute_model(0).flop_rate == pytest.approx(2.93e9 * 1.1)

    def test_block_ec2_ht_throttles(self):
        plat = Platform(EC2, Engine())
        place_ranks(plat, 16, Placement(strategy="block"))
        assert plat.compute_model(0).flop_rate == pytest.approx(
            2.93e9 * 1.1 * 0.625
        )
