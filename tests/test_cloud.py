"""Tests for the cloud substrate: modules, packaging, EC2, StarCluster."""

import pytest

from repro.cloud import (
    BuildRecipe,
    CC1_4XLARGE,
    ClusterTemplate,
    Ec2Api,
    HpcEnvironment,
    ModulesEnvironment,
    PackagingError,
    StarCluster,
)
from repro.cloud.ec2api import M1_LARGE
from repro.cloud.modulesenv import ModuleDef
from repro.cloud.packaging import deploy_check
from repro.cloud.pricing import PriceBook, SpotMarket
from repro.errors import CloudError
from repro.platforms import DCC, EC2, VAYU


def vayu_env() -> HpcEnvironment:
    mods = ModulesEnvironment()
    mods.install(ModuleDef("intel-fc", "11.1.072"))
    mods.install(ModuleDef("openmpi", "1.4.3", requires=("intel-fc",)))
    mods.install(ModuleDef("netcdf", "4.1.1", requires=("intel-fc",)))
    return HpcEnvironment(VAYU, mods)


class TestModulesEnvironment:
    def test_install_and_avail(self):
        env = vayu_env().modules
        assert "openmpi/1.4.3" in env.avail()

    def test_load_pulls_dependencies(self):
        env = vayu_env().modules
        env.load("openmpi")
        assert {m.name for m in env.loaded()} == {"intel-fc", "openmpi"}

    def test_conflicting_versions_rejected(self):
        env = vayu_env().modules
        env.install(ModuleDef("openmpi", "1.6.0", requires=("intel-fc",)), default=False)
        env.load("openmpi/1.4.3")
        with pytest.raises(CloudError):
            env.load("openmpi/1.6.0")

    def test_missing_dependency_at_install(self):
        env = ModulesEnvironment()
        with pytest.raises(CloudError):
            env.install(ModuleDef("app", "1.0", requires=("nonexistent",)))

    def test_closure_dep_first(self):
        env = vayu_env().modules
        closure = env.closure(["netcdf", "openmpi"])
        names = [m.name for m in closure]
        assert names.index("intel-fc") < names.index("netcdf")
        assert len(names) == len(set(names))

    def test_unload(self):
        env = vayu_env().modules
        env.load("intel-fc")
        env.unload("intel-fc")
        assert env.loaded() == []
        with pytest.raises(CloudError):
            env.unload("intel-fc")


class TestPackaging:
    def test_sse4_binary_refused_on_dcc(self):
        """The paper's SSE4 incident (sections V-C and VI)."""
        env = vayu_env()
        env.build(BuildRecipe("um", "7.8", "intel-fc",
                              compiler_flags=("-xHost",),
                              module_deps=("openmpi", "netcdf")))
        image = env.package("img", ["um"])
        with pytest.raises(PackagingError, match="sse4"):
            deploy_check(image, DCC)
        deploy_check(image, EC2)  # EC2 hosts expose SSE4: fine

    def test_conservative_flags_run_everywhere(self):
        env = vayu_env()
        env.build(BuildRecipe("um", "7.8", "intel-fc",
                              compiler_flags=("-msse3",),
                              module_deps=("openmpi",)))
        image = env.package("img", ["um"])
        for target in (DCC, EC2, VAYU):
            deploy_check(image, target)

    def test_image_contains_dependency_closure(self):
        env = vayu_env()
        env.build(BuildRecipe("um", "7.8", "intel-fc",
                              module_deps=("openmpi", "netcdf")))
        image = env.package("img", ["um"])
        assert image.package_names() == {"intel-fc", "openmpi", "netcdf"}
        assert image.missing_dependencies() == {}

    def test_packaging_unbuilt_app_rejected(self):
        with pytest.raises(CloudError):
            vayu_env().package("img", ["ghost"])

    def test_rsync_time_scales_with_size(self):
        env = vayu_env()
        env.build(BuildRecipe("um", "7.8", "intel-fc", module_deps=("openmpi",)))
        image = env.package("img", ["um"])
        assert env.rsync_seconds(image, link_bw=100e6) == pytest.approx(
            image.size_bytes / 100e6
        )


class TestEc2Api:
    def test_boot_lifecycle(self):
        api = Ec2Api(seed=1, boot_failure_rate=0.0)
        insts = api.run_instances(M1_LARGE, 3)
        assert all(i.state == "pending" for i in insts)
        api.wait(600)
        assert all(i.state == "running" for i in insts)
        api.terminate(i.instance_id for i in insts)
        assert all(i.state == "terminated" for i in api.describe())

    def test_boot_failures_occur(self):
        api = Ec2Api(seed=3, boot_failure_rate=0.5)
        insts = api.run_instances(M1_LARGE, 40)
        failed = [i for i in insts if i.state == "failed"]
        assert 5 < len(failed) < 35

    def test_placement_group_restrictions(self):
        api = Ec2Api(seed=1)
        api.create_placement_group("pg")
        with pytest.raises(CloudError):
            api.run_instances(M1_LARGE, 1, placement_group="pg")
        with pytest.raises(CloudError):
            api.run_instances(CC1_4XLARGE, 1, placement_group="nope")
        api.run_instances(CC1_4XLARGE, 1, placement_group="pg")

    def test_spot_needs_sufficient_bid(self):
        api = Ec2Api(seed=1)
        price = api.spot_market.current_price(CC1_4XLARGE, 0.0)
        with pytest.raises(CloudError):
            api.run_instances(CC1_4XLARGE, 1, spot=True, spot_bid=price / 2)
        api.run_instances(CC1_4XLARGE, 1, spot=True, spot_bid=price * 2)

    def test_billing_rounds_up_to_hours(self):
        api = Ec2Api(seed=1, boot_failure_rate=0.0)
        insts = api.run_instances(CC1_4XLARGE, 2)
        api.wait(1800)  # half an hour
        api.terminate(i.instance_id for i in insts)
        assert api.billed_usd() == pytest.approx(2 * CC1_4XLARGE.hourly_usd)

    def test_failed_instances_not_billed(self):
        api = Ec2Api(seed=3, boot_failure_rate=1.0)
        api.run_instances(M1_LARGE, 3)
        api.wait(3600)
        assert api.billed_usd() == 0.0


class TestSpotMarket:
    def test_prices_positive_and_below_anchor_mostly(self):
        market = SpotMarket(seed=4)
        hist = market.price_history(CC1_4XLARGE, 86400)
        prices = [p for _, p in hist]
        assert min(prices) > 0
        assert sum(p < CC1_4XLARGE.hourly_usd for p in prices) > len(prices) * 0.7

    def test_deterministic_and_consistent(self):
        a = SpotMarket(seed=7).current_price(CC1_4XLARGE, 7200)
        b = SpotMarket(seed=7).current_price(CC1_4XLARGE, 7200)
        assert a == b
        market = SpotMarket(seed=7)
        later = market.current_price(CC1_4XLARGE, 7200)
        earlier = market.current_price(CC1_4XLARGE, 3600)  # backwards query
        assert later == a and earlier > 0

    def test_would_outbid(self):
        market = SpotMarket(seed=7)
        assert market.would_outbid(CC1_4XLARGE, 100.0, 0.0, 7200)
        assert not market.would_outbid(CC1_4XLARGE, 0.0001, 0.0, 7200)

    def test_would_outbid_unaligned_start_sees_spike_tick(self):
        """Regression: an unaligned ``start`` must still check every tick
        the interval covers.  The old code stepped ``tick_seconds`` from
        ``start`` itself, sampling between boundaries and skipping the
        spike on tick 1 entirely for this interval."""
        market = SpotMarket(
            seed=7, tick_seconds=100.0, volatility=0.0, reversion=0.0,
            spike_prob=1.0,
        )
        anchor = CC1_4XLARGE.hourly_usd * market.anchor_fraction
        # Tick 0 is exactly the anchor; tick 1 spikes to >= 2x anchor.
        assert market.current_price(CC1_4XLARGE, 0.0) == pytest.approx(anchor)
        assert market.current_price(CC1_4XLARGE, 100.0) >= 2 * anchor
        # [50, 149] straddles the tick-1 boundary: the spike must outbid.
        assert not market.would_outbid(CC1_4XLARGE, 1.5 * anchor, 50.0, 99.0)
        # Entirely inside tick 0 the same bid survives.
        assert market.would_outbid(CC1_4XLARGE, 1.5 * anchor, 10.0, 80.0)
        with pytest.raises(CloudError):
            market.would_outbid(CC1_4XLARGE, 1.0, 0.0, -1.0)

    def test_job_cost(self):
        book = PriceBook()
        assert book.job_cost(CC1_4XLARGE, 4, 2.5) == pytest.approx(
            4 * 3 * CC1_4XLARGE.hourly_usd
        )

    def test_job_cost_minimum_one_hour(self):
        """Regression: EC2's 2012 billing charges a minimum of one full
        hour per launched instance, even for a zero-duration job."""
        book = PriceBook()
        assert book.job_cost(CC1_4XLARGE, 3, 0.0) == pytest.approx(
            3 * CC1_4XLARGE.hourly_usd
        )
        assert book.job_cost(CC1_4XLARGE, 1, 0.01) == pytest.approx(
            CC1_4XLARGE.hourly_usd
        )


class TestStarCluster:
    def test_start_retries_boot_failures(self):
        api = Ec2Api(seed=5, boot_failure_rate=0.3)
        sc = StarCluster(api)
        cluster = sc.start(ClusterTemplate("c", size=4))
        assert cluster.size == 4
        assert cluster.platform.num_nodes == 4
        assert cluster.launch_seconds > 0

    def test_persistent_failures_give_up(self):
        api = Ec2Api(seed=5, boot_failure_rate=1.0)
        sc = StarCluster(api)
        with pytest.raises(CloudError, match="failing to boot"):
            sc.start(ClusterTemplate("c", size=2, max_boot_retries=2))

    def test_duplicate_cluster_rejected(self):
        api = Ec2Api(seed=5, boot_failure_rate=0.0)
        sc = StarCluster(api)
        sc.start(ClusterTemplate("c", size=1))
        with pytest.raises(CloudError):
            sc.start(ClusterTemplate("c", size=1))

    def test_terminate_releases_instances(self):
        api = Ec2Api(seed=5, boot_failure_rate=0.0)
        sc = StarCluster(api)
        cluster = sc.start(ClusterTemplate("c", size=2))
        sc.terminate("c")
        states = {api.instances[i].state for i in cluster.instance_ids()}
        assert states == {"terminated"}

    def test_run_workload_uses_cluster_platform(self):
        from repro.npb import get_benchmark

        api = Ec2Api(seed=5, boot_failure_rate=0.0)
        sc = StarCluster(api)
        sc.start(ClusterTemplate("c", size=2))
        result = sc.run_workload("c", get_benchmark("ep"), 16, seed=1)
        assert result.platform == "EC2"
        assert api.now > result.projected_time  # billed time advanced

    def test_image_isa_check_at_launch(self):
        env = vayu_env()
        env.build(BuildRecipe("um", "7.8", "intel-fc", compiler_flags=("-msse3",),
                              module_deps=("openmpi",)))
        image = env.package("img", ["um"])
        api = Ec2Api(seed=5, boot_failure_rate=0.0)
        cluster = StarCluster(api).start(
            ClusterTemplate("c", size=1, image=image)
        )
        assert cluster.template.image is image
