"""Determinism-linter coverage: every rule fires on its defect class,
suppressions work, and the repo itself lints clean."""

import pathlib

import pytest

from repro.analysis.lint import (
    RULES,
    lint_paths,
    lint_source,
    render_findings,
)
from repro.cli import main

REPO = pathlib.Path(__file__).resolve().parents[1]


def rules_for(source: str) -> list[str]:
    return [f.rule for f in lint_source(source, "snippet.py")]


class TestDET001WallClock:
    def test_time_time(self):
        assert rules_for("import time\nt = time.time()\n") == ["DET001"]

    def test_perf_counter_from_import(self):
        src = "from time import perf_counter\nt = perf_counter()\n"
        assert rules_for(src) == ["DET001"]

    def test_datetime_now(self):
        src = "from datetime import datetime\nd = datetime.now()\n"
        assert rules_for(src) == ["DET001"]

    def test_datetime_module_utcnow(self):
        src = "import datetime\nd = datetime.datetime.utcnow()\n"
        assert rules_for(src) == ["DET001"]

    def test_simulated_clock_is_fine(self):
        src = "def prog(comm):\n    t = comm.wtime()\n    yield 0\n"
        assert rules_for(src) == []


class TestDET002UnseededRandom:
    def test_module_level_random(self):
        assert rules_for("import random\nx = random.random()\n") == ["DET002"]

    def test_unseeded_random_instance(self):
        assert rules_for("import random\nr = random.Random()\n") == ["DET002"]

    def test_seeded_random_instance_is_fine(self):
        assert rules_for("import random\nr = random.Random(42)\n") == []

    def test_numpy_legacy_global(self):
        src = "import numpy as np\nx = np.random.rand(3)\n"
        assert rules_for(src) == ["DET002"]

    def test_unseeded_default_rng(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert rules_for(src) == ["DET002"]

    def test_seeded_default_rng_is_fine(self):
        src = "import numpy as np\nrng = np.random.default_rng(7)\n"
        assert rules_for(src) == []

    def test_default_rng_from_import(self):
        src = "from numpy.random import default_rng\nrng = default_rng()\n"
        assert rules_for(src) == ["DET002"]


class TestDET003IdOrdering:
    def test_sorted_key_id(self):
        assert rules_for("ys = sorted(xs, key=id)\n") == ["DET003"]

    def test_list_sort_key_id(self):
        assert rules_for("xs.sort(key=id)\n") == ["DET003"]

    def test_named_key_is_fine(self):
        assert rules_for("ys = sorted(xs, key=len)\n") == []


class TestDET004SetIteration:
    def test_for_over_set_literal(self):
        assert rules_for("for x in {1, 2}:\n    pass\n") == ["DET004"]

    def test_comprehension_over_set_call(self):
        assert rules_for("ys = [y for y in set(xs)]\n") == ["DET004"]

    def test_sorted_set_is_fine(self):
        assert rules_for("for x in sorted(set(xs)):\n    pass\n") == []


class TestDET005UnpicklableWorker:
    def test_nested_registration(self):
        src = (
            "from repro.harness.parallel import cell_worker\n"
            "def outer():\n"
            "    @cell_worker('bad')\n"
            "    def inner(x):\n"
            "        return x\n"
        )
        assert rules_for(src) == ["DET005"]

    def test_lambda_registration(self):
        src = (
            "from repro.harness.parallel import cell_worker\n"
            "w = cell_worker('bad')(lambda x: x)\n"
        )
        assert rules_for(src) == ["DET005"]

    def test_module_level_registration_is_fine(self):
        src = (
            "from repro.harness.parallel import cell_worker\n"
            "@cell_worker('good')\n"
            "def worker(x):\n"
            "    return x\n"
        )
        assert rules_for(src) == []


class TestDET006RankDependentCollective:
    def test_collective_under_rank_branch(self):
        src = (
            "def prog(comm):\n"
            "    if comm.rank == 0:\n"
            "        yield from comm.bcast(8)\n"
        )
        assert rules_for(src) == ["DET006"]

    def test_unconditional_collective_is_fine(self):
        src = "def prog(comm):\n    yield from comm.bcast(8)\n"
        assert rules_for(src) == []

    def test_point_to_point_under_rank_branch_is_fine(self):
        src = (
            "def prog(comm):\n"
            "    if comm.rank == 0:\n"
            "        yield from comm.send(1, 8)\n"
        )
        assert rules_for(src) == []

    def test_str_split_is_not_a_collective(self):
        src = (
            "def f(comm, text):\n"
            "    if comm.rank == 0:\n"
            "        return text.split()\n"
        )
        assert rules_for(src) == []


class TestSuppressions:
    def test_bare_lint_ok_suppresses_everything(self):
        assert rules_for("import time\nt = time.time()  # lint-ok\n") == []

    def test_rule_specific_suppression(self):
        src = "import time\nt = time.time()  # lint-ok: DET001 host timer\n"
        assert rules_for(src) == []

    def test_wrong_rule_does_not_suppress(self):
        src = "import time\nt = time.time()  # lint-ok: DET002\n"
        assert rules_for(src) == ["DET001"]

    def test_multiple_rules_in_one_comment(self):
        src = (
            "import time, random\n"
            "t = time.time() + random.random()  # lint-ok: DET001, DET002\n"
        )
        assert rules_for(src) == []


class TestInfrastructure:
    def test_syntax_error_becomes_det000(self):
        (finding,) = lint_source("def broken(:\n", "bad.py")
        assert finding.rule == "DET000"

    def test_every_rule_has_a_description(self):
        assert set(RULES) >= {f"DET00{i}" for i in range(7)}
        assert all(RULES.values())

    def test_render_findings_clean(self):
        assert render_findings([]) == "lint: clean"

    def test_render_findings_lists_and_counts(self):
        findings = lint_source("import time\nt = time.time()\n", "mod.py")
        text = render_findings(findings)
        assert "mod.py:2:" in text and "DET001" in text and "1 finding" in text

    def test_missing_path_is_an_error_not_clean(self, tmp_path):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="lint path"):
            lint_paths([tmp_path / "no_such_dir"])

    def test_repo_lints_clean(self):
        """Acceptance criterion: ``repro lint src benchmarks`` exits 0."""
        findings = lint_paths([REPO / "src", REPO / "benchmarks"])
        assert findings == [], render_findings(findings)


class TestCli:
    def test_cli_exit_codes(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import time\nt = time.time()\n")
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")

        assert main(["lint", str(clean)]) == 0
        assert "lint: clean" in capsys.readouterr().out

        assert main(["lint", str(dirty)]) == 1
        assert "DET001" in capsys.readouterr().out

    def test_cli_json_output(self, tmp_path, capsys):
        import json

        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\nx = random.random()\n")
        assert main(["lint", "--json", str(dirty)]) == 1
        (row,) = json.loads(capsys.readouterr().out)
        assert row["rule"] == "DET002" and row["line"] == 2
