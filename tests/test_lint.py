"""Determinism-linter coverage: every rule fires on its defect class,
suppressions work, and the repo itself lints clean."""

import pathlib

import pytest

from repro.analysis.lint import (
    RULES,
    lint_paths,
    lint_source,
    render_findings,
)
from repro.cli import main

REPO = pathlib.Path(__file__).resolve().parents[1]


def rules_for(source: str) -> list[str]:
    return [f.rule for f in lint_source(source, "snippet.py")]


class TestDET001WallClock:
    def test_time_time(self):
        assert rules_for("import time\nt = time.time()\n") == ["DET001"]

    def test_perf_counter_from_import(self):
        src = "from time import perf_counter\nt = perf_counter()\n"
        assert rules_for(src) == ["DET001"]

    def test_datetime_now(self):
        src = "from datetime import datetime\nd = datetime.now()\n"
        assert rules_for(src) == ["DET001"]

    def test_datetime_module_utcnow(self):
        src = "import datetime\nd = datetime.datetime.utcnow()\n"
        assert rules_for(src) == ["DET001"]

    def test_simulated_clock_is_fine(self):
        src = "def prog(comm):\n    t = comm.wtime()\n    yield 0\n"
        assert rules_for(src) == []


class TestDET002UnseededRandom:
    def test_module_level_random(self):
        assert rules_for("import random\nx = random.random()\n") == ["DET002"]

    def test_unseeded_random_instance(self):
        assert rules_for("import random\nr = random.Random()\n") == ["DET002"]

    def test_seeded_random_instance_is_fine(self):
        assert rules_for("import random\nr = random.Random(42)\n") == []

    def test_numpy_legacy_global(self):
        src = "import numpy as np\nx = np.random.rand(3)\n"
        assert rules_for(src) == ["DET002"]

    def test_unseeded_default_rng(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert rules_for(src) == ["DET002"]

    def test_seeded_default_rng_is_fine(self):
        src = "import numpy as np\nrng = np.random.default_rng(7)\n"
        assert rules_for(src) == []

    def test_default_rng_from_import(self):
        src = "from numpy.random import default_rng\nrng = default_rng()\n"
        assert rules_for(src) == ["DET002"]


class TestDET003IdOrdering:
    def test_sorted_key_id(self):
        assert rules_for("ys = sorted(xs, key=id)\n") == ["DET003"]

    def test_list_sort_key_id(self):
        assert rules_for("xs.sort(key=id)\n") == ["DET003"]

    def test_named_key_is_fine(self):
        assert rules_for("ys = sorted(xs, key=len)\n") == []


class TestDET004SetIteration:
    def test_for_over_set_literal(self):
        assert rules_for("for x in {1, 2}:\n    pass\n") == ["DET004"]

    def test_comprehension_over_set_call(self):
        assert rules_for("ys = [y for y in set(xs)]\n") == ["DET004"]

    def test_sorted_set_is_fine(self):
        assert rules_for("for x in sorted(set(xs)):\n    pass\n") == []


class TestDET005UnpicklableWorker:
    def test_nested_registration(self):
        src = (
            "from repro.harness.parallel import cell_worker\n"
            "def outer():\n"
            "    @cell_worker('bad')\n"
            "    def inner(x):\n"
            "        return x\n"
        )
        assert rules_for(src) == ["DET005"]

    def test_lambda_registration(self):
        src = (
            "from repro.harness.parallel import cell_worker\n"
            "w = cell_worker('bad')(lambda x: x)\n"
        )
        assert rules_for(src) == ["DET005"]

    def test_module_level_registration_is_fine(self):
        src = (
            "from repro.harness.parallel import cell_worker\n"
            "@cell_worker('good')\n"
            "def worker(x):\n"
            "    return x\n"
        )
        assert rules_for(src) == []


class TestDET006RankDependentCollective:
    def test_collective_under_rank_branch(self):
        src = (
            "def prog(comm):\n"
            "    if comm.rank == 0:\n"
            "        yield from comm.bcast(8)\n"
        )
        assert rules_for(src) == ["DET006"]

    def test_unconditional_collective_is_fine(self):
        src = "def prog(comm):\n    yield from comm.bcast(8)\n"
        assert rules_for(src) == []

    def test_point_to_point_under_rank_branch_is_fine(self):
        src = (
            "def prog(comm):\n"
            "    if comm.rank == 0:\n"
            "        yield from comm.send(1, 8)\n"
        )
        assert rules_for(src) == []

    def test_str_split_is_not_a_collective(self):
        src = (
            "def f(comm, text):\n"
            "    if comm.rank == 0:\n"
            "        return text.split()\n"
        )
        assert rules_for(src) == []


class TestSuppressions:
    def test_bare_lint_ok_suppresses_everything(self):
        assert rules_for("import time\nt = time.time()  # lint-ok\n") == []

    def test_rule_specific_suppression(self):
        src = "import time\nt = time.time()  # lint-ok: DET001 host timer\n"
        assert rules_for(src) == []

    def test_wrong_rule_does_not_suppress(self):
        # The listed rule never fired, so the suppression is also stale.
        src = "import time\nt = time.time()  # lint-ok: DET002\n"
        assert rules_for(src) == ["DET012", "DET001"]

    def test_multiple_rules_in_one_comment(self):
        src = (
            "import time, random\n"
            "t = time.time() + random.random()  # lint-ok: DET001, DET002\n"
        )
        assert rules_for(src) == []


class TestInfrastructure:
    def test_syntax_error_becomes_det000(self):
        (finding,) = lint_source("def broken(:\n", "bad.py")
        assert finding.rule == "DET000"

    def test_every_rule_has_a_description(self):
        assert set(RULES) >= {f"DET00{i}" for i in range(7)}
        assert all(RULES.values())

    def test_render_findings_clean(self):
        assert render_findings([]) == "lint: clean"

    def test_render_findings_lists_and_counts(self):
        findings = lint_source("import time\nt = time.time()\n", "mod.py")
        text = render_findings(findings)
        assert "mod.py:2:" in text and "DET001" in text and "1 finding" in text

    def test_missing_path_is_an_error_not_clean(self, tmp_path):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="lint path"):
            lint_paths([tmp_path / "no_such_dir"])

    def test_repo_lints_clean(self):
        """Acceptance criterion: ``repro lint src benchmarks`` exits 0."""
        findings = lint_paths([REPO / "src", REPO / "benchmarks"])
        assert findings == [], render_findings(findings)


class TestCli:
    def test_cli_exit_codes(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import time\nt = time.time()\n")
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")

        assert main(["lint", str(clean)]) == 0
        assert "lint: clean" in capsys.readouterr().out

        assert main(["lint", str(dirty)]) == 1
        assert "DET001" in capsys.readouterr().out

    def test_cli_json_output(self, tmp_path, capsys):
        import json

        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\nx = random.random()\n")
        assert main(["lint", "--json", str(dirty)]) == 1
        (row,) = json.loads(capsys.readouterr().out)
        assert row["rule"] == "DET002" and row["line"] == 2


def deep_rules_for(source: str) -> list[str]:
    return [f.rule for f in lint_source(source, "snippet.py", deep=True)]


class TestDET007GlobalMutation:
    def test_global_statement_rebind(self):
        src = "COUNT = 0\ndef bump():\n    global COUNT\n    COUNT += 1\n"
        assert deep_rules_for(src) == ["DET007"]

    def test_inplace_mutation_of_module_list(self):
        src = "CACHE = []\ndef stash(x):\n    CACHE.append(x)\n"
        assert deep_rules_for(src) == ["DET007"]

    def test_subscript_store_into_module_dict(self):
        src = "TABLE = {}\ndef put(k, v):\n    TABLE[k] = v\n"
        assert deep_rules_for(src) == ["DET007"]

    def test_local_rebind_is_fine(self):
        src = "COUNT = 0\ndef f():\n    COUNT = 5\n    return COUNT\n"
        assert deep_rules_for(src) == []

    def test_plain_mode_stays_silent(self):
        src = "CACHE = []\ndef stash(x):\n    CACHE.append(x)\n"
        assert rules_for(src) == []


class TestDET008EnvironmentReads:
    def test_os_environ_get(self):
        src = "import os\ndef f():\n    return os.environ.get('X')\n"
        assert deep_rules_for(src) == ["DET008"]

    def test_os_environ_subscript(self):
        src = "import os\ndef f():\n    return os.environ['X']\n"
        assert deep_rules_for(src) == ["DET008"]

    def test_getenv_from_import(self):
        src = "from os import getenv\ndef f():\n    return getenv('X')\n"
        assert deep_rules_for(src) == ["DET008"]

    def test_open_and_read_text(self):
        src = (
            "import pathlib\n"
            "def f(p):\n"
            "    a = open(p).read()\n"
            "    return a + pathlib.Path(p).read_text()\n"
        )
        assert deep_rules_for(src) == ["DET008", "DET008"]

    def test_plain_mode_stays_silent(self):
        src = "import os\ndef f():\n    return os.environ.get('X')\n"
        assert rules_for(src) == []


class TestDET009SetOrderEscape:
    def test_list_over_set(self):
        assert deep_rules_for("r = list({1, 2, 3})\n") == ["DET009"]

    def test_join_over_set_call(self):
        src = "def f(xs):\n    return ','.join(set(xs))\n"
        assert deep_rules_for(src) == ["DET009"]

    def test_sorted_set_is_fine(self):
        assert deep_rules_for("r = sorted({1, 2, 3})\n") == []


class TestDET010WorkerCaptures:
    def test_lambda_default_in_worker(self):
        src = (
            "from repro.harness.parallel import cell_worker\n"
            "@cell_worker('w')\n"
            "def w(x, f=lambda v: v + 1):\n"
            "    return f(x)\n"
        )
        assert deep_rules_for(src) == ["DET010"]

    def test_worker_returning_lambda(self):
        src = (
            "from repro.harness.parallel import cell_worker\n"
            "@cell_worker('w')\n"
            "def w(x):\n"
            "    return lambda: x\n"
        )
        assert deep_rules_for(src) == ["DET010"]

    def test_plain_function_lambda_is_fine(self):
        src = "def f(x, g=lambda v: v):\n    return g(x)\n"
        assert deep_rules_for(src) == []


class TestDET011CollectiveInHandler:
    def test_collective_in_except(self):
        src = (
            "def prog(comm):\n"
            "    try:\n"
            "        yield from comm.bcast(1)\n"
            "    except ValueError:\n"
            "        yield from comm.barrier()\n"
        )
        assert deep_rules_for(src) == ["DET011"]

    def test_collective_in_finally(self):
        src = (
            "def prog(comm):\n"
            "    try:\n"
            "        yield 1\n"
            "    finally:\n"
            "        yield from comm.allreduce(0)\n"
        )
        assert deep_rules_for(src) == ["DET011"]

    def test_collective_in_try_body_is_fine(self):
        src = (
            "def prog(comm):\n"
            "    try:\n"
            "        yield from comm.bcast(1)\n"
            "    except ValueError:\n"
            "        pass\n"
        )
        assert deep_rules_for(src) == []


class TestDET012StaleSuppression:
    def test_bare_suppression_with_nothing_fired_is_stale(self):
        assert rules_for("x = 1  # lint-ok\n") == ["DET012"]

    def test_bare_suppression_that_fires_is_fine(self):
        assert rules_for("import time\nt = time.time()  # lint-ok\n") == []

    def test_deep_only_rule_not_stale_in_plain_mode(self):
        src = "CACHE = []\ndef f(x):\n    CACHE.append(x)  # lint-ok: DET007 intentional\n"
        assert rules_for(src) == []
        assert deep_rules_for(src) == []

    def test_deep_listed_suppression_stale_in_deep_mode(self):
        src = "def f(x):\n    return x  # lint-ok: DET007\n"
        assert deep_rules_for(src) == ["DET012"]

    def test_one_stale_rule_among_live_ones(self):
        src = (
            "import time\n"
            "t = time.time()  # lint-ok: DET001, DET002 host timer\n"
        )
        assert rules_for(src) == ["DET012"]


class TestUnreadableFiles:
    def test_non_utf8_file_reports_det000(self, tmp_path):
        from repro.analysis.lint import lint_file

        bad = tmp_path / "latin.py"
        bad.write_bytes(b"x = '\xe9'\n")  # latin-1, invalid UTF-8
        (finding,) = lint_file(bad)
        assert finding.rule == "DET000"
        assert "cannot read file" in finding.message
        assert finding.line == 0

    def test_unreadable_file_keeps_lint_paths_going(self, tmp_path):
        from repro.analysis.lint import lint_file

        bad = tmp_path / "bad.py"
        bad.write_bytes(b"\xff\xfe\x00broken")
        good = tmp_path / "good.py"
        good.write_text("import time\nt = time.time()\n")
        findings = lint_paths([tmp_path])
        assert {f.rule for f in findings} == {"DET000", "DET001"}
        # And lint_file on its own never raises either.
        assert lint_file(bad)[0].rule == "DET000"


class TestCollectiveRegistrySync:
    """Satellite: DET006/DET011 share the canonical collective registry."""

    def test_linter_uses_the_canonical_registry_object(self):
        import repro.analysis.lint as lint_mod
        from repro.smpi.collectives import COLLECTIVE_METHODS

        assert lint_mod.COLLECTIVE_METHODS is COLLECTIVE_METHODS

    def test_registry_matches_comm_and_world_surface(self):
        """Every registered name is a real method on Comm or MpiWorld,
        and every Comm/MpiWorld collective generator is registered."""
        import ast

        from repro import smpi
        from repro.smpi.collectives import COLLECTIVE_METHODS

        def methods_of(path, classname):
            tree = ast.parse(pathlib.Path(path).read_text(encoding="utf-8"))
            for stmt in tree.body:
                if isinstance(stmt, ast.ClassDef) and stmt.name == classname:
                    return {
                        s.name for s in stmt.body
                        if isinstance(s, ast.FunctionDef)
                        and not s.name.startswith("_")
                    }
            raise AssertionError(f"class {classname} not found in {path}")

        base = pathlib.Path(smpi.__file__).parent
        comm_methods = methods_of(base / "comm.py", "Comm")
        world_methods = methods_of(base / "world.py", "MpiWorld")
        # Registered names must exist on the public simulation surface.
        assert COLLECTIVE_METHODS <= comm_methods | world_methods, (
            COLLECTIVE_METHODS - (comm_methods | world_methods)
        )
        # Every Comm method that routes through the collective engine
        # must be registered — DET006/DET011 see exactly the same set.
        src = (base / "comm.py").read_text(encoding="utf-8")
        tree = ast.parse(src)
        routed = set()
        for stmt in tree.body:
            if not (isinstance(stmt, ast.ClassDef) and stmt.name == "Comm"):
                continue
            for meth in stmt.body:
                if not isinstance(meth, ast.FunctionDef):
                    continue
                for node in ast.walk(meth):
                    if (isinstance(node, ast.Call)
                            and isinstance(node.func, ast.Attribute)
                            and node.func.attr in ("collective", "split")
                            and isinstance(node.func.value, ast.Attribute)
                            or isinstance(node, ast.Call)
                            and isinstance(node.func, ast.Attribute)
                            and node.func.attr == "collective"):
                        routed.add(meth.name)
        assert routed <= COLLECTIVE_METHODS, routed - COLLECTIVE_METHODS
