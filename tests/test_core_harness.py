"""Tests for the study API and the experiment harness."""

import pytest

from repro.core import PlatformComparison, ScalingStudy
from repro.core.analysis import (
    normalized_times,
    render_stats_table,
    speedup_series,
    table3_stats,
)
from repro.errors import ConfigError
from repro.harness import EXPERIMENTS, run_experiment
from repro.harness.figures import percent_delta, render_series_table, render_speedup_plot
from repro.npb import get_benchmark
from repro.platforms import DCC, VAYU


class TestAnalysis:
    def test_speedup_series_default_base(self):
        out = speedup_series({1: 100.0, 4: 25.0, 16: 10.0})
        assert out == {1: 1.0, 4: 4.0, 16: 10.0}

    def test_speedup_series_explicit_base(self):
        out = speedup_series({8: 80.0, 32: 20.0}, base_procs=8)
        assert out[32] == pytest.approx(4.0)

    def test_speedup_series_validation(self):
        with pytest.raises(ConfigError):
            speedup_series({})
        with pytest.raises(ConfigError):
            speedup_series({2: 1.0}, base_procs=1)
        with pytest.raises(ConfigError):
            speedup_series({1: 0.0})

    def test_normalized_times(self):
        out = normalized_times({"DCC": 100.0, "Vayu": 70.0}, "DCC")
        assert out == {"DCC": 1.0, "Vayu": 0.7}
        with pytest.raises(ConfigError):
            normalized_times({"a": 1.0}, "b")

    def test_table3_stats_reference_rows(self):
        from repro.apps.metum import MetumBenchmark

        bench = MetumBenchmark(sim_steps=1)
        results = {
            "Vayu": bench.run(VAYU, 8, seed=1),
            "DCC": bench.run(DCC, 8, seed=1),
        }
        rows = table3_stats(results, reference_platform="Vayu")
        assert rows[0].rcomp == pytest.approx(1.0)
        assert rows[1].rcomp > 1.2
        text = render_stats_table(rows)
        assert "rcomp" in text and "DCC" in text

    def test_table3_requires_reference(self):
        with pytest.raises(ConfigError):
            table3_stats({}, reference_platform="Vayu")


class TestStudyApi:
    def test_npb_scaling_study(self):
        study = ScalingStudy.npb("ep", platform=VAYU)
        curve = study.run([1, 4], seed=1)
        sp = curve.speedups()
        assert sp[1] == 1.0 and sp[4] > 3.0
        assert set(curve.comm_percents()) == {1, 4}

    def test_empty_proc_list_rejected(self):
        with pytest.raises(ConfigError):
            ScalingStudy.npb("ep", platform=VAYU).run([])

    def test_metum_study_constructor(self):
        study = ScalingStudy.metum(VAYU, sim_steps=1)
        curve = study.run([8], seed=1)
        assert curve.workload == "MetUM"
        assert curve.times[8] > 0

    def test_chaste_study_constructor(self):
        curve = ScalingStudy.chaste(VAYU, sim_steps=1).run([8], seed=1)
        assert curve.platform == "Vayu"

    def test_platform_comparison_normalised(self):
        comparison = PlatformComparison(get_benchmark("ep"), "EP")
        out = comparison.normalized(1, reference="DCC", seed=1)
        assert out["DCC"] == 1.0
        assert 0.6 < out["Vayu"] < 0.9


class TestHarness:
    def test_registry_covers_every_artifact(self):
        assert set(EXPERIMENTS) == {
            "tab1", "fig1", "fig2", "fig3", "fig4", "tab2",
            "fig5", "fig6", "tab3", "fig7", "arrivef",
        }

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigError):
            run_experiment("fig99")

    def test_fig3_comparisons_within_band(self):
        out = run_experiment("fig3", quick=True, seed=1)
        for metric, measured, ref in out.comparisons:
            assert measured == pytest.approx(ref, rel=0.2), metric

    def test_tab3_render_contains_all_rows(self):
        out = run_experiment("tab3", quick=True, seed=1)
        for label in ("Vayu", "DCC", "EC2", "EC2-4"):
            assert label in out.text

    def test_render_includes_comparisons(self):
        out = run_experiment("fig1", quick=True, seed=1)
        rendered = out.render()
        assert "paper-vs-measured" in rendered and "EC2 peak" in rendered


class TestFigureRendering:
    def test_series_table_alignment(self):
        text = render_series_table("t", ["a", "b"], {1: [1.0, 2.0], 2: [3.0, 4.0]})
        lines = text.splitlines()
        assert lines[0] == "t"
        assert len({len(line) for line in lines[1:]}) == 1

    def test_speedup_plot_legend(self):
        text = render_speedup_plot("p", {"x": {1: 1.0, 4: 4.0}})
        assert "legend: A=x" in text

    def test_speedup_plot_empty(self):
        assert "(no data)" in render_speedup_plot("p", {})

    def test_percent_delta(self):
        assert percent_delta(110.0, 100.0) == "+10%"
        assert percent_delta(90.0, 100.0) == "-10%"
        assert percent_delta(1.0, 0.0) == "n/a"
