"""Smoke tests running the example scripts end to end (subprocess).

Only the fast examples run in the unit suite; the two application
studies (climate/cardiac) take a minute each and are exercised by the
benchmark harness instead.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: float = 120.0) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        for platform in ("Vayu", "DCC", "EC2"):
            assert platform in out
        assert "comm%" in out

    def test_package_hpc_env(self):
        out = run_example("package_hpc_env.py")
        assert "REFUSED" in out          # the SSE4 incident
        assert "deploy to EC2: OK" in out
        assert "portability goal" in out

    def test_cloudburst_demo(self):
        out = run_example("cloudburst_demo.py")
        assert "bursting" in out
        assert "without bursting" in out
        assert "$" in out

    def test_all_examples_exist_and_documented(self):
        scripts = sorted(p.name for p in EXAMPLES.glob("*.py"))
        assert len(scripts) >= 6
        for script in scripts:
            head = (EXAMPLES / script).read_text().split('"""')[1]
            assert len(head.strip()) > 40, f"{script} lacks a real docstring"
