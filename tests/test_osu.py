"""Tests for the OSU micro-benchmark implementations (Figs 1-2)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.harness.paper import FIG1_LANDMARKS
from repro.osu import DEFAULT_SIZES, osu_bandwidth, osu_bibw, osu_latency, osu_multi_lat
from repro.platforms import DCC, EC2, VAYU

SIZES = [1, 1024, 65536, 262144, 1 << 22]


class TestLatency:
    def test_latency_increases_with_size(self):
        lat = osu_latency(VAYU, SIZES, iterations=20)
        vals = [lat[n] for n in SIZES]
        assert vals == sorted(vals)

    def test_vayu_microsecond_class(self):
        lat = osu_latency(VAYU, [1], iterations=50)
        assert lat[1] < 5e-6

    def test_platform_ordering_small_messages(self):
        lats = {s.name: osu_latency(s, [1], iterations=30)[1] for s in (DCC, EC2, VAYU)}
        assert lats["Vayu"] < lats["EC2"] < lats["DCC"]

    def test_dcc_latency_fluctuates_others_do_not(self):
        """Fig 2: DCC 'fluctuated from 1 byte to 512KB messages'.

        A clean fabric's latency-vs-size curve is monotone; DCC's
        vSwitch jitter makes it wiggle.  The fluctuation metric is the
        total magnitude of *decreases* along the curve, relative to the
        mean — exactly zero for a monotone curve.
        """
        sizes = [2**k for k in range(0, 14)]

        def wiggle(spec):
            lat = osu_latency(spec, sizes, iterations=25, seed=3)
            vals = np.array([lat[n] for n in sizes])
            drops = np.clip(np.diff(vals), None, 0.0)
            return float(-drops.sum() / vals.mean())

        assert wiggle(VAYU) < 0.01
        assert wiggle(EC2) < 0.15
        assert wiggle(DCC) > 0.3

    def test_invalid_inputs(self):
        with pytest.raises(ConfigError):
            osu_latency(VAYU, [])
        with pytest.raises(ConfigError):
            osu_latency(VAYU, [0])


class TestBandwidth:
    def test_bandwidth_increases_to_peak(self):
        bw = osu_bandwidth(VAYU, SIZES, iterations=4)
        assert bw[1] < bw[1024] < bw[65536]

    def test_fig1_landmarks(self):
        ec2 = max(osu_bandwidth(EC2, SIZES, iterations=4).values())
        dcc = max(osu_bandwidth(DCC, SIZES, iterations=4).values())
        vayu = max(osu_bandwidth(VAYU, SIZES, iterations=4).values())
        assert ec2 == pytest.approx(FIG1_LANDMARKS["ec2_peak_bw"], rel=0.15)
        assert dcc == pytest.approx(FIG1_LANDMARKS["dcc_peak_bw"], rel=0.15)
        assert vayu / ec2 > 5.0

    def test_ec2_large_message_droop(self):
        """Fig 1 shows EC2 bandwidth declining past ~1MB."""
        bw = osu_bandwidth(EC2, [262144, 1 << 22], iterations=4)
        assert bw[1 << 22] < bw[262144]

    def test_bibw_exceeds_unidirectional(self):
        uni = osu_bandwidth(VAYU, [1 << 20], iterations=4)[1 << 20]
        bi = osu_bibw(VAYU, [1 << 20], iterations=4)[1 << 20]
        assert bi > 1.3 * uni

    def test_default_sizes_span_osu_range(self):
        assert DEFAULT_SIZES[0] == 1 and DEFAULT_SIZES[-1] == 1 << 22


class TestMultiLatency:
    def test_pairs_contend_for_nic(self):
        single = osu_multi_lat(DCC, pairs=1, sizes=[1 << 16], iterations=10)
        four = osu_multi_lat(DCC, pairs=4, sizes=[1 << 16], iterations=10)
        assert four[1 << 16] > 1.5 * single[1 << 16]

    def test_pairs_capped_by_node_slots(self):
        with pytest.raises(ConfigError):
            osu_multi_lat(DCC, pairs=9)

    def test_invalid_pairs(self):
        with pytest.raises(ConfigError):
            osu_multi_lat(DCC, pairs=0)
