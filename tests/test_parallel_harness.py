"""Tests for the parallel sweep executor (repro.harness.parallel).

The contract under test is determinism: a ``jobs=4`` run must render —
and export — byte-for-byte what a ``jobs=1`` run renders at the same
seed, for every registered experiment.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.harness.experiments import EXPERIMENTS
from repro.harness.parallel import Cell, cell_worker, resolve_jobs, run_cells
from repro.harness.runner import run_batch


# ---------------------------------------------------------------------------
# run_cells unit behaviour
# ---------------------------------------------------------------------------

@cell_worker("test_echo")
def _echo(*args):
    return args


def test_run_cells_merges_in_cell_order():
    cells = [Cell((k,), "test_echo", (k * 10,)) for k in (3, 1, 2)]
    out = run_cells(cells, jobs=1)
    assert list(out) == [(3,), (1,), (2,)], "merge order is cell order, not sorted"
    assert out[(1,)] == (10,)


def test_run_cells_parallel_merge_matches_serial():
    cells = [Cell((k,), "test_echo", (k,)) for k in range(6)]
    assert run_cells(cells, jobs=4) == run_cells(cells, jobs=1)


def test_run_cells_rejects_duplicate_keys():
    cells = [Cell((1,), "test_echo"), Cell((1,), "test_echo")]
    with pytest.raises(ConfigError, match="duplicate cell keys"):
        run_cells(cells)


def test_duplicate_key_error_names_the_offenders():
    # Satellite fix: the error must say *which* keys collided, sorted
    # for a stable message.
    cells = [Cell((k,), "test_echo") for k in (5, 1, 5, 3, 1)]
    with pytest.raises(ConfigError, match=r"\(2 distinct\)") as err:
        run_cells(cells)
    assert "(1,), (5,)" in str(err.value)


def test_duplicate_key_error_caps_at_ten():
    cells = [Cell((k,), "test_echo") for k in range(12) for _ in (0, 1)]
    with pytest.raises(ConfigError, match=r"\(12 distinct\)") as err:
        run_cells(cells)
    message = str(err.value)
    assert message.count("(") <= 14  # 10 keys + counts, not all 12
    assert "... (2 more)" in message


def test_run_cells_rejects_unknown_worker():
    with pytest.raises(ConfigError, match="unknown cell worker"):
        run_cells([Cell((1,), "no_such_worker")])


def test_duplicate_worker_registration_rejected():
    with pytest.raises(ConfigError, match="already registered"):
        cell_worker("test_echo")(lambda: None)


def test_resolve_jobs():
    assert resolve_jobs(3) == 3
    assert resolve_jobs(None) >= 1
    assert resolve_jobs(0) >= 1


def test_resolve_jobs_rejects_negative():
    # A `--jobs -2` typo used to silently mean "all CPUs"; only None/0
    # may mean that.
    for jobs in (-1, -2, -64):
        with pytest.raises(ValueError, match="jobs must be >= 0"):
            resolve_jobs(jobs)


def test_empty_cell_list():
    assert run_cells([], jobs=4) == {}


# ---------------------------------------------------------------------------
# Serial/parallel equivalence for every registered experiment
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
def test_experiment_parallel_matches_serial(experiment_id, tmp_path):
    serial = run_batch([experiment_id], quick=True, seed=2, jobs=1)
    parallel = run_batch([experiment_id], quick=True, seed=2, jobs=4)
    assert parallel.render() == serial.render()

    exports = {}
    for label, batch in (("serial", serial), ("parallel", parallel)):
        j, c, t = (tmp_path / f"{label}.{ext}" for ext in ("json", "csv", "txt"))
        batch.write_json(j)
        batch.write_csv(c)
        batch.write_text(t)
        exports[label] = (j.read_bytes(), c.read_bytes(), t.read_bytes())
    assert exports["parallel"] == exports["serial"]
