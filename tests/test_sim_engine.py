"""Unit tests for the discrete-event engine core."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim import AllOf, AnyOf, Engine, Event, Resource, Store, Timeout


class TestEventBasics:
    def test_event_starts_untriggered(self):
        eng = Engine()
        ev = eng.event("x")
        assert not ev.triggered
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_succeed_delivers_value(self):
        eng = Engine()
        ev = eng.event()
        ev.succeed(42)
        assert ev.triggered and ev.ok
        assert ev.value == 42

    def test_double_trigger_rejected(self):
        eng = Engine()
        ev = eng.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)
        with pytest.raises(SimulationError):
            ev.fail(RuntimeError("nope"))

    def test_fail_reraises_in_value(self):
        eng = Engine()
        ev = eng.event()
        ev.fail(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            _ = ev.value

    def test_fail_requires_exception(self):
        eng = Engine()
        with pytest.raises(TypeError):
            eng.event().fail("not an exception")  # type: ignore[arg-type]

    def test_callback_after_dispatch_runs_immediately(self):
        eng = Engine()
        ev = eng.event()
        ev.succeed("v")
        eng.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == ["v"]


class TestTimeouts:
    def test_timeout_advances_clock(self):
        eng = Engine()
        eng.timeout(2.5)
        eng.run()
        assert eng.now == pytest.approx(2.5)

    def test_negative_delay_rejected(self):
        eng = Engine()
        with pytest.raises(ValueError):
            eng.timeout(-1.0)

    def test_timeouts_dispatch_in_time_order(self):
        eng = Engine()
        order = []
        for d in (3.0, 1.0, 2.0):
            eng.timeout(d).add_callback(lambda _e, d=d: order.append(d))
        eng.run()
        assert order == [1.0, 2.0, 3.0]

    def test_ties_broken_by_schedule_order(self):
        eng = Engine()
        order = []
        for i in range(5):
            eng.timeout(1.0).add_callback(lambda _e, i=i: order.append(i))
        eng.run()
        assert order == [0, 1, 2, 3, 4]

    def test_run_until_time(self):
        eng = Engine()
        fired = []
        eng.timeout(1.0).add_callback(lambda _e: fired.append(1))
        eng.timeout(5.0).add_callback(lambda _e: fired.append(5))
        eng.run(until=2.0)
        assert fired == [1]
        assert eng.now == pytest.approx(2.0)

    def test_call_at(self):
        eng = Engine()
        hits = []
        eng.call_at(4.0, lambda: hits.append(eng.now))
        eng.run()
        assert hits == [4.0]

    def test_call_at_past_rejected(self):
        eng = Engine()
        eng.timeout(1.0)
        eng.run()
        with pytest.raises(SimulationError):
            eng.call_at(0.5, lambda: None)


class TestProcesses:
    def test_process_returns_value(self):
        eng = Engine()

        def prog():
            yield eng.timeout(1.0)
            return "done"

        p = eng.process(prog())
        eng.run()
        assert p.value == "done"
        assert eng.now == pytest.approx(1.0)

    def test_numeric_yield_is_timeout(self):
        eng = Engine()

        def prog():
            yield 2.0
            yield 3
            return eng.now

        p = eng.process(prog())
        eng.run()
        assert p.value == pytest.approx(5.0)

    def test_process_waits_on_process(self):
        eng = Engine()

        def child():
            yield eng.timeout(2.0)
            return 7

        def parent():
            v = yield eng.process(child())
            return v * 2

        p = eng.process(parent())
        eng.run()
        assert p.value == 14

    def test_exception_propagates_to_waiter(self):
        eng = Engine()

        def bad():
            yield eng.timeout(1.0)
            raise RuntimeError("inner")

        def outer():
            try:
                yield eng.process(bad())
            except RuntimeError as exc:
                return f"caught {exc}"

        p = eng.process(outer())
        eng.run()
        assert p.value == "caught inner"

    def test_uncaught_exception_fails_process(self):
        eng = Engine()

        def bad():
            yield eng.timeout(1.0)
            raise ValueError("oops")

        p = eng.process(bad())
        eng.run()
        assert p.triggered and not p.ok
        with pytest.raises(ValueError):
            _ = p.value

    def test_yielding_garbage_fails_process(self):
        eng = Engine()

        def bad():
            yield "not an event"

        p = eng.process(bad())
        eng.run()
        assert not p.ok

    def test_requires_generator(self):
        eng = Engine()
        with pytest.raises(TypeError):
            eng.process(lambda: None)  # type: ignore[arg-type]

    def test_deadlock_detection(self):
        eng = Engine()

        def stuck():
            yield eng.event()

        eng.process(stuck())
        with pytest.raises(DeadlockError):
            eng.run()


class TestConditions:
    def test_all_of_collects_values(self):
        eng = Engine()
        t1, t2 = eng.timeout(1.0, "a"), eng.timeout(2.0, "b")
        cond = eng.all_of([t1, t2])

        def waiter():
            vals = yield cond
            return vals

        p = eng.process(waiter())
        eng.run()
        assert p.value == ["a", "b"]
        assert eng.now == pytest.approx(2.0)

    def test_any_of_returns_first(self):
        eng = Engine()
        slow, fast = eng.timeout(5.0, "slow"), eng.timeout(1.0, "fast")
        cond = eng.any_of([slow, fast])

        def waiter():
            idx, val = yield cond
            return idx, val, eng.now

        p = eng.process(waiter())
        eng.run()
        assert p.value == (1, "fast", 1.0)

    def test_all_of_empty_fires_immediately(self):
        eng = Engine()
        cond = eng.all_of([])
        assert cond.triggered
        assert cond.value == []


class TestResource:
    def test_fifo_granting(self):
        eng = Engine()
        res = Resource(eng, capacity=1)
        grants = []

        def worker(i):
            yield res.request()
            grants.append((i, eng.now))
            yield eng.timeout(1.0)
            res.release()

        for i in range(3):
            eng.process(worker(i))
        eng.run()
        assert grants == [(0, 0.0), (1, 1.0), (2, 2.0)]

    def test_capacity_two(self):
        eng = Engine()
        res = Resource(eng, capacity=2)
        grants = []

        def worker(i):
            yield res.request()
            grants.append((i, eng.now))
            yield eng.timeout(1.0)
            res.release()

        for i in range(4):
            eng.process(worker(i))
        eng.run()
        assert grants == [(0, 0.0), (1, 0.0), (2, 1.0), (3, 1.0)]

    def test_release_idle_raises(self):
        eng = Engine()
        res = Resource(eng)
        with pytest.raises(SimulationError):
            res.release()

    def test_invalid_capacity(self):
        eng = Engine()
        with pytest.raises(ValueError):
            Resource(eng, capacity=0)

    def test_utilisation_accounting(self):
        eng = Engine()
        res = Resource(eng, capacity=1)

        def worker():
            yield res.request()
            yield eng.timeout(2.0)
            res.release()
            yield eng.timeout(2.0)

        eng.process(worker())
        eng.run()
        assert res.utilisation() == pytest.approx(0.5)


class TestStore:
    def test_put_then_get(self):
        eng = Engine()
        store = Store(eng)
        store.put("a")

        def getter():
            item = yield store.get()
            return item

        p = eng.process(getter())
        eng.run()
        assert p.value == "a"

    def test_get_blocks_until_put(self):
        eng = Engine()
        store = Store(eng)

        def getter():
            item = yield store.get()
            return item, eng.now

        def putter():
            yield eng.timeout(3.0)
            store.put("late")

        p = eng.process(getter())
        eng.process(putter())
        eng.run()
        assert p.value == ("late", 3.0)

    def test_fifo_ordering(self):
        eng = Engine()
        store = Store(eng)
        for x in (1, 2, 3):
            store.put(x)

        def getter():
            out = []
            for _ in range(3):
                out.append((yield store.get()))
            return out

        p = eng.process(getter())
        eng.run()
        assert p.value == [1, 2, 3]

    def test_match_predicate_selects_item(self):
        eng = Engine()
        store = Store(eng)
        store.put(("tagA", 1))
        store.put(("tagB", 2))

        def getter():
            item = yield store.get(match=lambda it: it[0] == "tagB")
            return item

        p = eng.process(getter())
        eng.run()
        assert p.value == ("tagB", 2)
        assert store.peek_all() == [("tagA", 1)]

    def test_matching_waiter_woken_by_put(self):
        eng = Engine()
        store = Store(eng)

        def getter(tag):
            item = yield store.get(match=lambda it: it[0] == tag)
            return item

        pa = eng.process(getter("A"))
        pb = eng.process(getter("B"))

        def putter():
            yield eng.timeout(1.0)
            store.put(("B", "forB"))
            yield eng.timeout(1.0)
            store.put(("A", "forA"))

        eng.process(putter())
        eng.run()
        assert pa.value == ("A", "forA")
        assert pb.value == ("B", "forB")


class TestDeterminism:
    def test_same_seed_same_trajectory(self):
        def run(seed):
            eng = Engine(seed=seed)
            samples = []

            def prog():
                rng = eng.rng.stream("test")
                for _ in range(5):
                    dt = rng.exponential(1.0)
                    samples.append(dt)
                    yield eng.timeout(dt)
                return eng.now

            p = eng.process(prog())
            eng.run()
            return p.value, samples

        t1, s1 = run(42)
        t2, s2 = run(42)
        t3, _ = run(43)
        assert t1 == t2 and s1 == s2
        assert t1 != t3

    def test_named_streams_are_independent(self):
        eng = Engine(seed=1)
        a1 = eng.rng.stream("a").random(3).tolist()
        # Drawing from "b" must not perturb "a"'s continuation.
        eng.rng.stream("b").random(100)
        a2 = eng.rng.stream("a").random(3).tolist()

        eng2 = Engine(seed=1)
        b1 = eng2.rng.stream("a").random(6).tolist()
        assert a1 + a2 == pytest.approx(b1)

    def test_child_streams_differ_from_parent(self):
        eng = Engine(seed=5)
        root = eng.rng.stream("x").random(4).tolist()
        child = eng.rng.child("ns").stream("x").random(4).tolist()
        assert root != pytest.approx(child)
