"""Tests for the MetUM and Chaste application models."""

import pytest

from repro.apps.chaste import ChasteBenchmark, ChasteConfig, HeartMesh, partition_stats
from repro.apps.chaste.model import KSP_REGION, OUTPUT_REGION
from repro.apps.metum import (
    MetumBenchmark,
    MetumConfig,
    N320L70,
    decompose,
    factor_procgrid,
)
from repro.apps.metum.grid import physics_weight
from repro.errors import ConfigError
from repro.platforms import DCC, EC2, VAYU


class TestUmGrid:
    def test_procgrid_factorises(self):
        for p in (1, 2, 4, 8, 16, 24, 32, 48, 64):
            ew, ns = factor_procgrid(p)
            assert ew * ns == p and ew >= ns

    def test_decompose_conserves_grid(self):
        for p in (8, 32):
            nx = ny = 0
            ew, ns = factor_procgrid(p)
            cols = {decompose(N320L70, p, r)[0].nx for r in range(ew)}
            total_x = sum(decompose(N320L70, p, r)[0].nx for r in range(ew))
            total_y = sum(
                decompose(N320L70, p, r * ew)[0].ny for r in range(ns)
            )
            assert total_x == 640
            assert total_y == 481

    def test_uneven_latitude_rows(self):
        # 481 rows over 4 NS ranks: one rank gets the extra row.
        _, ew, ns = decompose(N320L70, 32, 0)
        sizes = {decompose(N320L70, 32, r * ew)[0].ny for r in range(ns)}
        assert sizes == {120, 121}

    def test_polar_subdomains_flagged(self):
        sub0, ew, ns = decompose(N320L70, 32, 0)
        sub_last, _, _ = decompose(N320L70, 32, 31)
        assert sub0.touches_pole and sub_last.touches_pole

    def test_physics_weight_mean_near_one(self):
        p = 32
        sub0, ew, ns = decompose(N320L70, p, 0)
        weights = [physics_weight(decompose(N320L70, p, r)[0], ew, ns)
                   for r in range(p)]
        assert sum(weights) / p == pytest.approx(1.0, abs=0.05)
        assert max(weights) > 1.2  # enough spread for Table III's %imbal

    def test_invalid_rank_rejected(self):
        with pytest.raises(ConfigError):
            decompose(N320L70, 8, 9)


class TestMetumModel:
    def test_config_validates_fractions(self):
        with pytest.raises(ConfigError):
            MetumConfig(dynamics_frac=0.5, helmholtz_frac=0.5, physics_frac=0.5)

    def test_memory_forces_two_ec2_nodes(self):
        bench = MetumBenchmark()
        placement = bench.placement_for(EC2, 8)
        assert placement.num_nodes == 2
        with pytest.raises(ConfigError):
            bench.placement_for(EC2, 8, num_nodes=1)

    def test_vayu_fits_one_node(self):
        assert MetumBenchmark().placement_for(VAYU, 8).num_nodes == 1

    def test_t8_calibration(self):
        from repro.harness.paper import FIG6_T8

        bench = MetumBenchmark(sim_steps=2)
        vayu = bench.run(VAYU, 8, seed=3).warmed_time
        dcc = bench.run(DCC, 8, seed=3).warmed_time
        assert vayu == pytest.approx(FIG6_T8["Vayu"], rel=0.12)
        assert dcc == pytest.approx(FIG6_T8["DCC"], rel=0.15)

    def test_io_times_match_table3(self):
        bench = MetumBenchmark(sim_steps=1)
        io_v = bench.run(VAYU, 32, seed=1).io_time
        io_d = bench.run(DCC, 32, seed=1).io_time
        assert io_v == pytest.approx(4.5, rel=0.15)
        assert io_d == pytest.approx(37.8, rel=0.15)

    def test_ec2_four_nodes_much_faster_at_32(self):
        """'using 4 nodes versus two is almost twice as fast' (V-C.2)."""
        bench = MetumBenchmark(sim_steps=2)
        two = bench.run(EC2, 32, num_nodes=2, seed=3).warmed_time
        four = bench.run(EC2, 32, num_nodes=4, seed=3).warmed_time
        assert two / four > 1.6

    def test_dcc_comm_share_far_exceeds_vayu(self):
        bench = MetumBenchmark(sim_steps=2)
        dcc = bench.run(DCC, 32, seed=3).comm_percent()
        vayu = bench.run(VAYU, 32, seed=3).comm_percent()
        assert dcc > 2 * vayu

    def test_warmed_time_excludes_io(self):
        bench = MetumBenchmark(sim_steps=1)
        r = bench.run(DCC, 8, seed=1)
        assert r.total_time == pytest.approx(r.warmed_time + r.io_time)

    def test_step_region_present_with_subregions(self):
        r = MetumBenchmark(sim_steps=1).run(VAYU, 8, seed=1)
        names = r.monitor.region_names()
        assert {"ATM_STEP", "atm_dynamics", "atm_helmholtz", "atm_physics"} <= set(names)


class TestChasteMesh:
    def test_partition_conserves_scale(self):
        mesh = HeartMesh()
        sizes = [partition_stats(mesh, 16, r).local_nodes for r in range(16)]
        assert sum(sizes) == pytest.approx(mesh.nodes, rel=0.05)

    def test_partition_imbalance_bounded(self):
        mesh = HeartMesh()
        sizes = [partition_stats(mesh, 16, r).local_nodes for r in range(16)]
        spread = (max(sizes) - min(sizes)) / (mesh.nodes / 16)
        assert spread <= 2 * mesh.partition_imbalance + 1e-9

    def test_halo_surface_scaling(self):
        mesh = HeartMesh()
        h8 = partition_stats(mesh, 8, 0).halo_nodes
        h64 = partition_stats(mesh, 64, 0).halo_nodes
        # Surface ~ (N/p)^(2/3): 8x fewer nodes -> 4x smaller surface.
        assert h8 / h64 == pytest.approx(4.0, rel=0.3)

    def test_serial_partition_has_no_halo(self):
        assert partition_stats(HeartMesh(), 1, 0).halo_nodes == 0

    def test_deterministic(self):
        a = partition_stats(HeartMesh(), 8, 3)
        b = partition_stats(HeartMesh(), 8, 3)
        assert a == b


class TestChasteModel:
    def test_t8_calibration(self):
        from repro.harness.paper import FIG5_T8_ADOPTED

        bench = ChasteBenchmark(sim_steps=2)
        r_vayu = bench.run(VAYU, 8, seed=3)
        r_dcc = bench.run(DCC, 8, seed=3)
        assert r_vayu.ksp_time == pytest.approx(FIG5_T8_ADOPTED["vayu_ksp"], rel=0.15)
        assert r_dcc.ksp_time == pytest.approx(FIG5_T8_ADOPTED["dcc_ksp"], rel=0.2)

    def test_ksp_comm_entirely_four_byte_allreduces(self):
        """The paper's KSp observation, checked via the IPM histogram."""
        bench = ChasteBenchmark(sim_steps=1)
        r = bench.run(DCC, 16, seed=1)
        ksp = r.monitor[0].regions[KSP_REGION]
        sizes = ksp.call_sizes("MPI_Allreduce")
        assert set(sizes) == {4}
        assert sizes[4].count == 2 * bench.cfg.ksp_iters

    def test_dcc_scaling_much_poorer(self):
        bench = ChasteBenchmark(sim_steps=2)
        sv = {}
        for spec in (VAYU, DCC):
            t8 = bench.run(spec, 8, seed=3).total_time
            t64 = bench.run(spec, 64, seed=3).total_time
            sv[spec.name] = t8 / t64
        assert sv["Vayu"] > 2 * sv["DCC"]
        assert sv["DCC"] < 3.5

    def test_dcc_comm_half_at_32(self):
        bench = ChasteBenchmark(sim_steps=2)
        pct = bench.run(DCC, 32, seed=3).comm_percent()
        assert 30 < pct < 65  # paper: 48%

    def test_output_constant_on_nfs_inverse_on_lustre(self):
        bench = ChasteBenchmark(sim_steps=1)
        out_v8 = bench.run(VAYU, 8, seed=1).section_wall(OUTPUT_REGION)
        out_v64 = bench.run(VAYU, 64, seed=1).section_wall(OUTPUT_REGION)
        out_d8 = bench.run(DCC, 8, seed=1).section_wall(OUTPUT_REGION)
        out_d64 = bench.run(DCC, 64, seed=1).section_wall(OUTPUT_REGION)
        assert out_v64 > 2 * out_v8  # inverse scaling on Lustre
        assert out_d64 == pytest.approx(out_d8, rel=0.35)  # ~constant on NFS

    def test_input_mesh_weak_scaling(self):
        """'input mesh ... scaled identically on both systems (1.25
        speedup at 64 cores over 8 cores)' (V-C.1)."""
        from repro.apps.chaste.model import INPUT_REGION

        bench = ChasteBenchmark(sim_steps=1)
        t8 = bench.run(VAYU, 8, seed=1).section_wall(INPUT_REGION)
        t64 = bench.run(VAYU, 64, seed=1).section_wall(INPUT_REGION)
        assert t8 / t64 == pytest.approx(1.25, rel=0.25)
