"""Tests for the content-addressed global cell store.

Covers the tentpole guarantees: content-addressed keys that bake in the
worker's code fingerprint (never-stale discipline), torn-record-tolerant
concurrent publishing, store-hit results byte-identical to fresh runs
across every registered experiment, and the ``repro store`` maintenance
CLI (stats/verify/gc/export/import).
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.cli import main
from repro.errors import ConfigError
from repro.harness.cellstore import (
    MISS,
    CellStore,
    active_store,
    record_problem,
    store_key,
    store_scope,
)
from repro.harness.parallel import Cell, cell_worker, run_cells
from repro.harness.supervisor import SupervisorPolicy, run_cells_supervised

#: Inline executions of the counting test worker (jobs=1 runs in-process).
_CALLS: list[tuple] = []


@cell_worker("cs_count")
def _cs_count(x):
    """Counting worker: records every execution, returns typed payloads."""
    _CALLS.append(("cs_count", x))
    return {"v": float(x * x), "curve": {1: x / 2, 1024: x * 1.5}, "key": (x,)}


@cell_worker("cs_plain")
def _cs_plain(x):
    """Second worker so cross-worker key separation can be asserted."""
    _CALLS.append(("cs_plain", x))
    return {"v": float(x)}


#: A cheap, real, statically fingerprintable cell (1 trial).
FAULTS_CELL = Cell(("r", 0.001), "faults_point",
                   (0.001, 300.0, 600.0, 5.0, 10.0, 1, 1))


@pytest.fixture
def fake_fingerprints(monkeypatch):
    """Give the test-local ``cs_*`` workers controllable code identities.

    The static analyzer cannot see workers registered from a test
    module, so this patches :func:`repro.analysis.static.worker_fingerprint`
    (the single source the store and supervisor both import) with a
    mutable mapping the test can edit to simulate a code change.
    """
    import repro.analysis.static as static

    fingerprints = {"cs_count": "aa" * 16, "cs_plain": "bb" * 16}
    real = static.worker_fingerprint
    monkeypatch.setattr(
        static, "worker_fingerprint",
        lambda worker: fingerprints.get(worker, real(worker)),
    )
    return fingerprints


# ---------------------------------------------------------------------------
# Key derivation
# ---------------------------------------------------------------------------

class TestStoreKey:
    def test_stable_and_discriminating(self):
        key = store_key("w", (1, ("a", 2), {1: 0.5}), "ab" * 16)
        assert key == store_key("w", (1, ("a", 2), {1: 0.5}), "ab" * 16)
        assert len(key) == 64 and key == key.lower()
        assert key != store_key("w2", (1, ("a", 2), {1: 0.5}), "ab" * 16)
        assert key != store_key("w", (1, ("a", 3), {1: 0.5}), "ab" * 16)

    def test_code_fingerprint_moves_the_key(self):
        # The whole staleness story: editing reachable code changes the
        # fingerprint, which changes the key, so old entries just stop
        # being found.
        args = (1, 2)
        assert store_key("w", args, "aa" * 16) != store_key("w", args, "bb" * 16)

    def test_journal_format_version_participates(self, monkeypatch):
        import repro.harness.cellstore as cellstore

        before = store_key("w", (1,), "aa" * 16)
        monkeypatch.setattr(
            cellstore, "JOURNAL_FORMAT_VERSION",
            cellstore.JOURNAL_FORMAT_VERSION + 1,
        )
        assert store_key("w", (1,), "aa" * 16) != before


# ---------------------------------------------------------------------------
# Publish / lookup
# ---------------------------------------------------------------------------

class TestPublishLookup:
    def test_round_trip_preserves_typed_values(self, tmp_path, fake_fingerprints):
        store = CellStore(tmp_path / "store")
        result = {"v": 2.5, "curve": {1: 0.5, 1024: 1.5}, "key": ("x", 3)}
        assert store.lookup("cs_count", (3,)) is MISS
        assert store.publish("cs_count", (3,), result)
        value = store.lookup("cs_count", (3,))
        assert value == result
        # Exact types survive the round trip: int dict keys stay ints,
        # tuples stay tuples, floats stay floats.  (String-keyed dicts
        # come back in canonical sorted order, same as journal resume.)
        assert all(isinstance(k, int) for k in value["curve"])
        assert isinstance(value["key"], tuple)
        assert isinstance(value["v"], float)
        assert store.hits == 1 and store.misses == 1 and store.published == 1

    def test_miss_on_different_args_or_worker(self, tmp_path, fake_fingerprints):
        store = CellStore(tmp_path / "store")
        store.publish("cs_count", (3,), {"v": 9.0})
        assert store.lookup("cs_count", (4,)) is MISS
        assert store.lookup("cs_plain", (3,)) is MISS

    def test_unfingerprintable_worker_bypasses_store(self, tmp_path):
        # No static code identity -> no safe cache key: lookups miss,
        # publishes are refused, nothing lands on disk.
        store = CellStore(tmp_path / "store")
        assert store.lookup("cs_count", (1,)) is MISS
        assert not store.publish("cs_count", (1,), {"v": 1.0})
        assert store.shard_files() == []

    def test_stale_fingerprint_never_served(self, tmp_path, fake_fingerprints):
        # Publish under one code identity, "edit the code", look up:
        # the entry must be invisible, not wrong.
        store = CellStore(tmp_path / "store")
        store.publish("cs_count", (3,), {"v": 9.0})
        fake_fingerprints["cs_count"] = "cc" * 16
        assert store.lookup("cs_count", (3,)) is MISS

    def test_last_record_wins_on_duplicate_keys(self, tmp_path, fake_fingerprints):
        store = CellStore(tmp_path / "store")
        store.publish("cs_count", (3,), {"v": 1.0})
        store.publish("cs_count", (3,), {"v": 2.0})
        assert store.lookup("cs_count", (3,)) == {"v": 2.0}

    def test_torn_record_tolerated_anywhere(self, tmp_path, fake_fingerprints):
        store = CellStore(tmp_path / "store")
        store.publish("cs_count", (3,), {"v": 9.0})
        [shard] = store.shard_files()
        body = shard.read_text()
        # A concurrent writer killed mid-append, then another completed
        # append after it: the torn line sits mid-file.
        shard.write_text('{"v": 1, "k": "deadbeef' + "\n" + body)
        assert store.lookup("cs_count", (3,)) == {"v": 9.0}
        stats = store.stats()
        assert stats.torn_lines == 1 and stats.records == 1

    def test_tampered_result_not_served(self, tmp_path, fake_fingerprints):
        # Flipping the payload hash (or key) on disk must yield a miss,
        # never a wrong result.
        store = CellStore(tmp_path / "store")
        store.publish("cs_count", (3,), {"v": 9.0})
        [shard] = store.shard_files()
        rec = json.loads(shard.read_text())
        rec["hash"] = "00" * 16
        shard.write_text(json.dumps(rec) + "\n")
        assert store.lookup("cs_count", (3,)) is MISS


# ---------------------------------------------------------------------------
# run_cells / supervisor integration
# ---------------------------------------------------------------------------

class TestRunCellsIntegration:
    def test_second_run_executes_zero_cells(self, tmp_path, fake_fingerprints):
        cells = [Cell((i,), "cs_count", (i,)) for i in range(4)]
        with store_scope(tmp_path / "store") as store:
            del _CALLS[:]
            first = run_cells(cells, jobs=1)
            assert len(_CALLS) == 4
            assert store.published == 4
        with store_scope(tmp_path / "store") as store:
            del _CALLS[:]
            second = run_cells(cells, jobs=1)
            assert _CALLS == []  # simulate once...
            assert store.hits == 4 and store.misses == 0
        assert second == first
        assert list(second) == list(first)  # key order preserved

    def test_partial_hits_merge_in_cell_order(self, tmp_path, fake_fingerprints):
        with store_scope(tmp_path / "store"):
            run_cells([Cell((1,), "cs_count", (1,)), Cell((3,), "cs_count", (3,))])
        cells = [Cell((i,), "cs_count", (i,)) for i in range(5)]
        with store_scope(tmp_path / "store") as store:
            del _CALLS[:]
            out = run_cells(cells, jobs=1)
        assert store.hits == 2 and store.misses == 3
        assert [x for _, x in _CALLS] == [0, 2, 4]
        assert list(out) == [(i,) for i in range(5)]
        assert out == {
            (i,): {"v": float(i * i), "curve": {1: i / 2, 1024: i * 1.5},
                   "key": (i,)}
            for i in range(5)
        }

    def test_code_edit_forces_re_execution(self, tmp_path, fake_fingerprints):
        cells = [Cell((i,), "cs_count", (i,)) for i in range(3)]
        with store_scope(tmp_path / "store"):
            run_cells(cells)
        fake_fingerprints["cs_count"] = "dd" * 16  # simulated code edit
        with store_scope(tmp_path / "store") as store:
            del _CALLS[:]
            run_cells(cells)
        assert store.hits == 0 and store.misses == 3
        assert len(_CALLS) == 3  # all re-simulated, old entries ignored

    def test_env_var_activates_store(self, tmp_path, fake_fingerprints,
                                     monkeypatch):
        root = tmp_path / "envstore"
        monkeypatch.setenv("REPRO_STORE", str(root))
        assert active_store() is not None
        run_cells([Cell((1,), "cs_count", (1,))])
        del _CALLS[:]
        run_cells([Cell((1,), "cs_count", (1,))])
        assert _CALLS == []
        monkeypatch.delenv("REPRO_STORE")
        assert active_store() is None

    def test_supervised_store_hits_counted(self, tmp_path, fake_fingerprints):
        cells = [Cell((i,), "cs_count", (i,)) for i in range(3)]
        with store_scope(tmp_path / "store"):
            fresh = run_cells_supervised(
                cells, jobs=1, policy=SupervisorPolicy(),
            )
            served = run_cells_supervised(
                cells, jobs=1, policy=SupervisorPolicy(),
            )
        assert fresh.stats.store_hits == 0
        assert served.stats.store_hits == 3 and served.stats.ok == 3
        assert served.results == fresh.results
        assert "3 from store" in served.banner()

    def test_journal_resume_hit_wins_over_store(self, tmp_path,
                                                fake_fingerprints):
        cells = [Cell((1,), "cs_count", (1,))]
        jpath = tmp_path / "j.jsonl"
        with store_scope(tmp_path / "store"):
            run_cells_supervised(
                cells, jobs=1, policy=SupervisorPolicy(journal=jpath),
            )
            resumed = run_cells_supervised(
                cells, jobs=1, policy=SupervisorPolicy(resume=jpath),
            )
        assert resumed.stats.journal_hits == 1
        assert resumed.stats.store_hits == 0


# ---------------------------------------------------------------------------
# Concurrent writers
# ---------------------------------------------------------------------------

def _publish_block(root: str, rates: list[float]) -> int:
    """Publish one deterministic faults_point record per rate (subprocess)."""
    store = CellStore(root)
    n = 0
    for rate in rates:
        args = (rate, 300.0, 600.0, 5.0, 10.0, 1, 1)
        result = {"completion_time": rate * 2.0, "restarts": 0.0,
                  "wasted_work": rate}
        if store.publish("faults_point", args, result):
            n += 1
    return n


class TestConcurrentWriters:
    def test_disjoint_and_overlapping_writers(self, tmp_path):
        # Two real processes publish concurrently: disjoint rate blocks
        # plus a shared overlap (same key, same deterministic payload).
        root = str(tmp_path / "store")
        a = [0.001 * i for i in range(1, 9)]        # .001 .. .008
        b = [0.001 * i for i in range(5, 13)]       # .005 .. .012 (overlap 4)
        with ProcessPoolExecutor(max_workers=2) as pool:
            fa = pool.submit(_publish_block, root, a)
            fb = pool.submit(_publish_block, root, b)
            assert fa.result() == 8 and fb.result() == 8
        store = CellStore(root)
        every = sorted(set(a) | set(b))
        for rate in every:
            args = (rate, 300.0, 600.0, 5.0, 10.0, 1, 1)
            value = store.lookup("faults_point", args)
            assert value == {"completion_time": rate * 2.0, "restarts": 0.0,
                             "wasted_work": rate}
        stats = store.stats()
        assert stats.unique_keys == len(every) == 12
        assert stats.records == 16  # overlap appended twice, served once
        assert stats.torn_lines == 0
        assert store.verify().clean


# ---------------------------------------------------------------------------
# Leases: store-aware scheduling across executors
# ---------------------------------------------------------------------------

class TestLeases:
    def test_lease_excludes_peer_until_publish(self, tmp_path, fake_fingerprints):
        a = CellStore(tmp_path / "store")
        b = CellStore(tmp_path / "store")
        assert a.try_lease("cs_count", (1,))
        assert not b.try_lease("cs_count", (1,))
        a.publish("cs_count", (1,), {"v": 1.0})  # publish releases the claim
        assert list(a.leases_dir.iterdir()) == []
        assert b.lookup("cs_count", (1,)) == {"v": 1.0}

    def test_release_leases_frees_peers(self, tmp_path, fake_fingerprints):
        a = CellStore(tmp_path / "store")
        b = CellStore(tmp_path / "store")
        assert a.try_lease("cs_count", (1,)) and a.try_lease("cs_count", (2,))
        a.release_leases()  # the error-path cleanup
        assert b.try_lease("cs_count", (1,)) and b.try_lease("cs_count", (2,))

    def test_uncacheable_worker_needs_no_lease(self, tmp_path):
        # No code fingerprint -> no content address -> nothing to
        # coordinate on: everyone just runs it.
        store = CellStore(tmp_path / "store")
        assert store.try_lease("cs_count", (1,))
        assert store.try_lease("cs_count", (1,))
        assert not store.leases_dir.exists()

    def test_stale_lease_taken_over(self, tmp_path, fake_fingerprints):
        a = CellStore(tmp_path / "store")
        assert a.try_lease("cs_count", (1,))
        [lease] = list(a.leases_dir.iterdir())
        old = time.time() - 60.0
        os.utime(lease, (old, old))  # the owner "crashed" a minute ago
        b = CellStore(tmp_path / "store", lease_ttl=5.0)
        assert b.try_lease("cs_count", (1,))
        assert b.takeovers == 1

    def test_bad_ttl_rejected(self, tmp_path, monkeypatch):
        with pytest.raises(ConfigError, match="lease TTL"):
            CellStore(tmp_path / "store", lease_ttl=0)
        monkeypatch.setenv("REPRO_STORE_LEASE_TTL", "-3")
        with pytest.raises(ConfigError, match="lease TTL"):
            CellStore(tmp_path / "store")

    def test_plan_cells_partitions(self, tmp_path, fake_fingerprints):
        mine = CellStore(tmp_path / "store")
        peer = CellStore(tmp_path / "store")
        mine.publish("cs_count", (0,), {"v": 0.0})
        assert peer.try_lease("cs_count", (2,))  # peer is computing (2,)
        plan = mine.plan_cells([Cell((i,), "cs_count", (i,)) for i in range(3)])
        assert list(plan.served) == [(0,)]
        assert [c.key for c in plan.to_run] == [(1,)]
        assert [c.key for c in plan.deferred] == [(2,)]

    def test_await_peer_serves_published_value(self, tmp_path, fake_fingerprints):
        mine = CellStore(tmp_path / "store")
        peer = CellStore(tmp_path / "store")
        assert peer.try_lease("cs_count", (2,))
        plan = mine.plan_cells([Cell((2,), "cs_count", (2,))])
        assert [c.key for c in plan.deferred] == [(2,)]
        peer.publish("cs_count", (2,), {"v": 4.0})
        assert mine.await_peer("cs_count", (2,)) == {"v": 4.0}
        # The planned miss became a peer-served hit: the banner's
        # "executed" count must not claim we computed it.
        assert mine.hits == 1 and mine.misses == 0 and mine.peer_waits == 1
        assert "1 awaited from peer(s)" in mine.banner()

    def test_await_peer_reclaims_released_lease(self, tmp_path,
                                                fake_fingerprints):
        mine = CellStore(tmp_path / "store")
        peer = CellStore(tmp_path / "store")
        assert peer.try_lease("cs_count", (2,))
        peer.release_leases()  # the peer aborted without publishing
        assert mine.await_peer("cs_count", (2,)) is MISS
        assert not peer.try_lease("cs_count", (2,))  # we hold it now

    def test_await_peer_gives_up_at_deadline(self, tmp_path, fake_fingerprints):
        mine = CellStore(tmp_path / "store")
        peer = CellStore(tmp_path / "store")
        assert peer.try_lease("cs_count", (2,))
        t0 = time.monotonic()
        assert mine.await_peer("cs_count", (2,), poll=0.01, max_wait=0.1) is MISS
        assert time.monotonic() - t0 < 5.0  # gave up, did not wait out the TTL

    def test_gc_reaps_stale_lease_files(self, tmp_path, fake_fingerprints):
        store = CellStore(tmp_path / "store", lease_ttl=5.0)
        store.publish("cs_count", (0,), {"v": 0.0})
        assert store.try_lease("cs_count", (1,))
        [lease] = list(store.leases_dir.iterdir())
        old = time.time() - 60.0
        os.utime(lease, (old, old))
        store.gc(dry_run=True)
        assert lease.exists()  # dry run only reports
        store.gc()
        assert not lease.exists()

    def _stale_lease(self, store, args=(1,)):
        """A lease whose owner 'crashed' long past the TTL; its path."""
        assert store.try_lease("cs_count", args)
        store._held.clear()  # the crashed owner is not *us*
        [lease] = list(store.leases_dir.iterdir())
        old = time.time() - 60.0
        os.utime(lease, (old, old))
        return lease

    def test_takeover_race_has_exactly_one_winner(self, tmp_path,
                                                  fake_fingerprints):
        # Regression: the old tmp-file + os.replace + read-back protocol
        # was last-write-wins — two racers that both replaced before
        # either read back each saw their own payload and BOTH claimed
        # the stale lease.  The exclusive-marker protocol must admit
        # exactly one winner no matter how many racers pile on.
        import threading

        self._stale_lease(CellStore(tmp_path / "store", lease_ttl=5.0))
        racers = [CellStore(tmp_path / "store", lease_ttl=5.0)
                  for _ in range(8)]
        barrier = threading.Barrier(len(racers))
        wins: list[bool] = [False] * len(racers)

        def race(i):
            barrier.wait()
            wins[i] = racers[i].try_lease("cs_count", (1,))

        threads = [threading.Thread(target=race, args=(i,))
                   for i in range(len(racers))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(wins) == 1
        # Usually the marker holder; rarely a fresh claimant slips into
        # the unlink/re-create gap and the marker holder demotes itself
        # (step 3) — either way never more than one takeover.
        assert sum(r.takeovers for r in racers) <= 1
        # The fresh lease now excludes everyone, including re-tries.
        late = CellStore(tmp_path / "store", lease_ttl=5.0)
        assert not late.try_lease("cs_count", (1,))

    def test_takeover_loses_to_an_active_marker(self, tmp_path,
                                                fake_fingerprints):
        # A racer mid-takeover holds the marker; everyone else must back
        # off instead of proceeding to clobber the winner's fresh lease.
        store = CellStore(tmp_path / "store", lease_ttl=5.0)
        lease = self._stale_lease(store)
        key = lease.name[:-len(".json")]
        marker = store.leases_dir / f"{key}.takeover"
        marker.touch()
        b = CellStore(tmp_path / "store", lease_ttl=5.0)
        assert not b.try_lease("cs_count", (1,))
        assert b.takeovers == 0
        marker.unlink()  # the holder finished (or was reaped)
        assert b.try_lease("cs_count", (1,))
        assert b.takeovers == 1

    def test_takeover_backs_off_if_lease_was_refreshed(self, tmp_path,
                                                       fake_fingerprints):
        # The marker winner re-checks staleness: if a completed takeover
        # refreshed the lease between our stale check and our marker
        # win, we must NOT steal it — that re-check is what closes the
        # old protocol's double-win window.
        store = CellStore(tmp_path / "store", lease_ttl=5.0)
        lease = self._stale_lease(store)
        key = lease.name[:-len(".json")]
        winner = CellStore(tmp_path / "store", lease_ttl=5.0)
        assert winner.try_lease("cs_count", (1,))  # lease is now fresh
        before = lease.read_text()
        late = CellStore(tmp_path / "store", lease_ttl=5.0)
        payload = json.dumps({"owner": late._owner, "k": key}, sort_keys=True)
        assert not late._take_over_stale(lease, key, payload)
        assert lease.read_text() == before  # winner's lease untouched
        assert not (store.leases_dir / f"{key}.takeover").exists()

    def test_orphaned_takeover_marker_is_cleared(self, tmp_path,
                                                 fake_fingerprints):
        # A racer that crashed between creating the marker and removing
        # it must not wedge the cell forever: a TTL-stale marker is
        # swept by the next attempt (which loses) and by gc.
        store = CellStore(tmp_path / "store", lease_ttl=5.0)
        lease = self._stale_lease(store)
        key = lease.name[:-len(".json")]
        marker = store.leases_dir / f"{key}.takeover"
        marker.touch()
        old = time.time() - 60.0
        os.utime(marker, (old, old))  # its holder crashed long ago
        b = CellStore(tmp_path / "store", lease_ttl=5.0)
        assert not b.try_lease("cs_count", (1,))  # this attempt loses...
        assert not marker.exists()                # ...but clears the wreck
        assert b.try_lease("cs_count", (1,))      # the next one wins
        # gc sweeps orphaned markers too.
        marker2 = store.leases_dir / ("ff" * 32 + ".takeover")
        marker2.touch()
        os.utime(marker2, (old, old))
        store.gc()
        assert not marker2.exists()


# ---------------------------------------------------------------------------
# Two executors, one store: the never-compute-twice guarantee
# ---------------------------------------------------------------------------

def _race_sweep(root: str, marker_dir: str, backend: str,
                xs: list[int]) -> dict:
    """One store-backed sweep over ``xs`` through ``backend`` (subprocess)."""
    import repro.analysis.static as static

    os.environ.pop("REPRO_SUPERVISE", None)
    real = static.worker_fingerprint
    static.worker_fingerprint = (
        lambda worker: "77" * 16 if worker == "cs_race" else real(worker)
    )
    from repro.harness.executor import make_executor

    cells = [Cell((x,), "cs_race", (x, marker_dir)) for x in xs]
    with store_scope(CellStore(root)) as store:
        ex = make_executor(backend, 2)
        try:
            results = run_cells(cells, executor=ex)
        finally:
            ex.shutdown(kill=True)
    return {"results": results, "peer_waits": store.peer_waits,
            "published": store.published}


@cell_worker("cs_race")
def _cs_race(x, marker_dir):
    """Slow worker leaving one unique marker file per actual execution."""
    import tempfile

    time.sleep(0.05)
    fd, _path = tempfile.mkstemp(prefix=f"cell{x}-", dir=marker_dir)
    os.close(fd)
    return {"v": float(x)}


class TestTwoExecutorsOneStore:
    def test_overlapping_sweeps_execute_each_cell_once(self, tmp_path):
        # The acceptance criterion: two processes race overlapping cells
        # through two *different* backends sharing one store; the lease
        # protocol must ensure no cell is ever computed twice.
        root = str(tmp_path / "store")
        markers = tmp_path / "markers"
        markers.mkdir()
        a_xs = list(range(8))       # 0..7
        b_xs = list(range(4, 12))   # 4..11 — four contested cells
        with ProcessPoolExecutor(max_workers=2) as pool:
            fa = pool.submit(_race_sweep, root, str(markers), "pool:chunk=2", a_xs)
            fb = pool.submit(_race_sweep, root, str(markers), "serial", b_xs)
            ra, rb = fa.result(timeout=300), fb.result(timeout=300)
        for x in range(12):
            runs = [p for p in markers.iterdir()
                    if p.name.startswith(f"cell{x}-")]
            assert len(runs) == 1, f"cell {x} executed {len(runs)} time(s)"
        # Both sweeps still see every one of their results, exactly as
        # if they had computed everything themselves.
        assert ra["results"] == {(x,): {"v": float(x)} for x in a_xs}
        assert rb["results"] == {(x,): {"v": float(x)} for x in b_xs}
        assert ra["published"] + rb["published"] == 12


# ---------------------------------------------------------------------------
# Byte-identity across every registered experiment
# ---------------------------------------------------------------------------

class TestExperimentByteIdentity:
    def test_warm_store_batch_is_byte_identical_with_zero_executions(
        self, tmp_path
    ):
        # The acceptance criterion: a full batch run twice against the
        # same store executes zero cell workers the second time and
        # renders byte-identically.
        from repro.harness.runner import run_batch

        root = tmp_path / "store"
        cold = run_batch(None, quick=True, seed=0, store=root)
        warm = run_batch(None, quick=True, seed=0, store=root)
        assert cold.render() == warm.render()
        assert warm.store_summary is not None
        assert "0 executed, 0 published" in warm.store_summary
        # And against a no-store baseline, byte for byte.
        plain = run_batch(None, quick=True, seed=0)
        assert plain.render() == warm.render()
        assert plain.store_summary is None

    def test_faults_sweep_store_round_trip(self, tmp_path):
        from repro.faults.sweep import sweep_failure_checkpoint

        root = tmp_path / "store"
        kwargs = dict(work=600.0, checkpoint_cost=5.0, restart_cost=10.0,
                      trials=2, seed=1)
        cold = sweep_failure_checkpoint([1e-4, 1e-3], [100.0, 200.0],
                                        store=root, **kwargs)
        warm = sweep_failure_checkpoint([1e-4, 1e-3], [100.0, 200.0],
                                        store=root, **kwargs)
        assert cold.render() == warm.render()
        assert "4 served, 0 executed" in warm.store_summary


# ---------------------------------------------------------------------------
# Maintenance: verify / gc / export / import
# ---------------------------------------------------------------------------

class TestMaintenance:
    def _populated(self, tmp_path, fingerprints):
        store = CellStore(tmp_path / "store")
        for x in range(4):
            store.publish("cs_count", (x,), {"v": float(x)})
        store.publish("cs_plain", (9,), {"v": 9.0})
        return store

    def test_verify_clean_store(self, tmp_path, fake_fingerprints):
        store = self._populated(tmp_path, fake_fingerprints)
        report = store.verify()
        assert report.clean and report.ok == 5 and report.torn_lines == 0

    def test_verify_flags_tampering(self, tmp_path, fake_fingerprints):
        store = self._populated(tmp_path, fake_fingerprints)
        shard = store.shard_files()[0]
        rec = json.loads(shard.read_text().splitlines()[0])
        rec["worker"] = "other_worker"  # key no longer re-derives
        with open(shard, "a") as fh:
            fh.write(json.dumps(rec) + "\n")
        report = store.verify()
        assert not report.clean
        assert any("does not re-derive" in p for p in report.problems)

    def test_record_problem_catalogue(self):
        assert record_problem([]) == "record is not an object"
        assert "non-integer" in record_problem({"v": "x"})
        assert "newer than supported" in record_problem({"v": 99})
        assert "missing field" in record_problem({"v": 1, "k": "ab" * 32})
        bad = {"v": 1, "k": "zz" * 32, "worker": "w", "args": [],
               "code": "aa", "hash": "bb" * 16, "result": {}}
        assert "64 lowercase hex" in record_problem(bad)

    def test_gc_drops_stale_and_duplicates(self, tmp_path, fake_fingerprints):
        store = self._populated(tmp_path, fake_fingerprints)
        store.publish("cs_count", (0,), {"v": 0.5})  # duplicate key
        fake_fingerprints["cs_plain"] = "ee" * 16    # stales cs_plain's entry
        dry = store.gc(dry_run=True)
        assert dry.dry_run and dry.dropped_stale == 1 and dry.dropped_duplicate == 1
        report = store.gc()
        assert report.kept == 4
        assert report.dropped_stale == 1 and report.dropped_duplicate == 1
        # Post-gc: duplicate collapsed last-wins, stale gone, all clean.
        assert store.lookup("cs_count", (0,)) == {"v": 0.5}
        assert store.verify().clean
        after = store.stats()
        assert after.records == 4 and after.unique_keys == 4

    def test_gc_unknown_worker_records(self, tmp_path, fake_fingerprints):
        store = self._populated(tmp_path, fake_fingerprints)
        del fake_fingerprints["cs_plain"]  # now unfingerprintable here
        kept = store.gc()
        assert kept.dropped_unknown == 0 and kept.kept == 5
        dropped = store.gc(drop_unknown=True)
        assert dropped.dropped_unknown == 1 and dropped.kept == 4

    def test_export_import_round_trip(self, tmp_path, fake_fingerprints):
        store = self._populated(tmp_path, fake_fingerprints)
        dump = tmp_path / "dump.jsonl"
        assert store.export(dump) == 5
        other = CellStore(tmp_path / "other")
        assert other.import_file(dump) == (5, 0, 0)
        assert other.lookup("cs_count", (2,)) == {"v": 2.0}
        assert other.verify().clean
        # Re-import is idempotent; tampered lines are refused.
        assert other.import_file(dump) == (0, 5, 0)
        with open(dump, "a") as fh:
            fh.write('{"v": 1, "k": "ab"}\n')
        third = CellStore(tmp_path / "third")
        assert third.import_file(dump) == (5, 0, 1)

    def test_export_is_deterministic(self, tmp_path, fake_fingerprints):
        store = self._populated(tmp_path, fake_fingerprints)
        assert list(store.export_lines()) == list(store.export_lines())

    def test_export_streams_in_global_key_order(self, tmp_path,
                                                fake_fingerprints):
        # export_lines holds one shard at a time; that is only sound
        # because a key's 2-hex prefix names its shard, so walking
        # shard files in name order yields globally sorted keys.  This
        # is the invariant that keeps export memory bounded by the
        # largest shard instead of the whole store.
        store = CellStore(tmp_path / "store")
        for x in range(20):  # enough keys to populate several shards
            store.publish("cs_count", (x,), {"v": float(x)})
        keys = [json.loads(line)["k"] for line in store.export_lines()]
        assert len(keys) == 20
        assert keys == sorted(keys)
        assert len(store.shard_files()) > 1  # the claim is non-vacuous

    def test_import_streams_unsorted_dumps(self, tmp_path,
                                           fake_fingerprints):
        # import_file reads line by line with a one-shard key cache;
        # unsorted input (worst case for the cache) must still land
        # every record exactly once and dedupe across cache reloads.
        store = CellStore(tmp_path / "store")
        for x in range(20):
            store.publish("cs_count", (x,), {"v": float(x)})
        lines = list(store.export_lines())
        shuffled = list(reversed(lines))  # anti-sorted: reload per line
        dup_key = json.loads(lines[0])["k"]
        shuffled.append(lines[0])  # a duplicate after many reloads
        dump = tmp_path / "dump.jsonl"
        dump.write_text("\n".join(shuffled) + "\n")
        other = CellStore(tmp_path / "other")
        assert other.import_file(dump) == (20, 1, 0)
        assert other.verify().clean
        assert [json.loads(l)["k"] for l in other.export_lines()] == sorted(
            json.loads(l)["k"] for l in lines
        )
        assert other.lookup("cs_count", (7,)) == {"v": 7.0}
        assert dup_key in {json.loads(l)["k"] for l in other.export_lines()}


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestStoreCli:
    def _populated_root(self, tmp_path, fingerprints):
        store = CellStore(tmp_path / "store")
        for x in range(3):
            store.publish("cs_count", (x,), {"v": float(x)})
        return str(tmp_path / "store")

    def test_stats_and_verify_exit_codes(self, tmp_path, fake_fingerprints,
                                         capsys):
        root = self._populated_root(tmp_path, fake_fingerprints)
        assert main(["store", "stats", root]) == 0
        out = capsys.readouterr().out
        assert "records      : 3" in out
        assert main(["store", "stats", root, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["records"] == 3 and payload["workers"] == {"cs_count": 3}
        assert main(["store", "verify", root]) == 0
        assert "3 record(s) ok" in capsys.readouterr().out

    def test_verify_gate_fails_on_corruption(self, tmp_path, fake_fingerprints,
                                             capsys):
        root = self._populated_root(tmp_path, fake_fingerprints)
        store = CellStore(root)
        shard = store.shard_files()[0]
        rec = json.loads(shard.read_text().splitlines()[0])
        rec["hash"] = "00" * 16
        with open(shard, "a") as fh:
            fh.write(json.dumps(rec) + "\n")
        assert main(["store", "verify", root]) == 1

    def test_gc_export_import_commands(self, tmp_path, fake_fingerprints,
                                       capsys):
        root = self._populated_root(tmp_path, fake_fingerprints)
        assert main(["store", "gc", root, "--dry-run"]) == 0
        assert "would drop" in capsys.readouterr().out
        dump = str(tmp_path / "dump.jsonl")
        assert main(["store", "export", root, "--out", dump]) == 0
        other = str(tmp_path / "other")
        assert main(["store", "import", other, dump]) == 0
        assert main(["store", "verify", other]) == 0

    def test_run_store_flag_round_trip(self, tmp_path, capsys):
        root = str(tmp_path / "store")
        assert main(["run", "tab2", "--store", root]) == 0
        first = capsys.readouterr()
        assert "store:" in first.err and "published" in first.err
        assert main(["run", "tab2", "--store", root]) == 0
        second = capsys.readouterr()
        assert first.out == second.out  # byte-identical report
        assert "0 executed, 0 published" in second.err

    def test_negative_jobs_is_a_clean_cli_error(self, capsys):
        assert main(["run", "tab2", "--jobs", "-2"]) == 1
        assert "jobs must be >= 0" in capsys.readouterr().err
