"""Unit tests for the IPM-style monitoring framework."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.ipm import (
    GLOBAL_REGION,
    CallKey,
    IpmMonitor,
    comm_percent,
    fig7_breakdown,
    imbalance_irregularity,
    imbalance_percent,
    imbalance_profile,
    render_fig7_ascii,
    summarize,
)


def make_monitor(nprocs=2):
    return IpmMonitor(nprocs)


class TestRegionAccounting:
    def test_global_region_always_present(self):
        mon = make_monitor()
        assert GLOBAL_REGION in mon[0].regions

    def test_enter_exit_accumulates_wall(self):
        mon = make_monitor()
        prof = mon[0]
        prof.enter("solve", 1.0)
        prof.exit("solve", 3.0)
        prof.enter("solve", 5.0)
        prof.exit("solve", 6.0)
        assert prof.regions["solve"].wall_time == pytest.approx(3.0)

    def test_reentering_open_region_rejected(self):
        mon = make_monitor()
        prof = mon[0]
        prof.enter("a", 0.0)
        with pytest.raises(ConfigError):
            prof.enter("a", 1.0)

    def test_mismatched_exit_rejected(self):
        mon = make_monitor()
        prof = mon[0]
        prof.enter("a", 0.0)
        prof.enter("b", 1.0)
        with pytest.raises(ConfigError):
            prof.exit("a", 2.0)

    def test_reserved_region_name_rejected(self):
        mon = make_monitor()
        with pytest.raises(ConfigError):
            mon[0].enter(GLOBAL_REGION, 0.0)

    def test_finalize_with_open_region_rejected(self):
        mon = make_monitor()
        mon[0].enter("a", 0.0)
        with pytest.raises(ConfigError):
            mon[0].finalize(1.0)

    def test_samples_charge_all_open_regions_plus_global(self):
        mon = make_monitor()
        prof = mon[0]
        prof.enter("outer", 0.0)
        prof.enter("inner", 0.0)
        prof.record_compute(2.0)
        prof.record_mpi("MPI_Allreduce", 8, 0.5)
        prof.exit("inner", 3.0)
        prof.exit("outer", 3.0)
        for region in ("outer", "inner", GLOBAL_REGION):
            stats = prof.regions[region]
            assert stats.compute_time == pytest.approx(2.0)
            assert stats.mpi_time == pytest.approx(0.5)

    def test_call_size_histogram(self):
        mon = make_monitor()
        prof = mon[0]
        prof.record_mpi("MPI_Allreduce", 4, 0.1)
        prof.record_mpi("MPI_Allreduce", 4, 0.2)
        prof.record_mpi("MPI_Allreduce", 1024, 0.3)
        sizes = prof.total.call_sizes("MPI_Allreduce")
        assert sizes[4].count == 2
        assert sizes[4].time == pytest.approx(0.3)
        assert sizes[1024].count == 1

    def test_mpi_bytes_total(self):
        mon = make_monitor()
        prof = mon[0]
        prof.record_mpi("MPI_Send", 100, 0.1)
        prof.record_mpi("MPI_Send", 100, 0.1)
        prof.record_mpi("MPI_Recv", 50, 0.1)
        assert prof.total.mpi_bytes() == 250


class TestSummaries:
    def _filled(self):
        mon = make_monitor(2)
        for rank, (comp, comm) in enumerate([(3.0, 1.0), (2.0, 2.0)]):
            prof = mon[rank]
            prof.enter("work", 0.0)
            prof.record_compute(comp)
            prof.record_mpi("MPI_Allreduce", 8, comm)
            prof.exit("work", 4.0)
            prof.finalize(4.0)
        return mon

    def test_summarize_totals(self):
        rep = summarize(self._filled(), "work")
        assert rep.compute_time == pytest.approx(5.0)
        assert rep.comm_time == pytest.approx(3.0)
        assert rep.comm_percent == pytest.approx(100 * 3.0 / 8.0)
        assert rep.wall_time == pytest.approx(4.0)

    def test_comm_percent_helper(self):
        assert comm_percent(self._filled(), "work") == pytest.approx(37.5)

    def test_calls_by_name_aggregated(self):
        rep = summarize(self._filled(), "work")
        assert rep.calls_by_name["MPI_Allreduce"] == (2, pytest.approx(3.0))

    def test_report_renders(self):
        text = str(summarize(self._filled(), "work"))
        assert "MPI_Allreduce" in text and "comm" in text

    def test_missing_region_is_empty(self):
        rep = summarize(self._filled(), "nonexistent")
        assert rep.comm_time == 0.0 and rep.comm_percent == 0.0


class TestImbalance:
    def _mon(self, comps, wall=10.0):
        mon = make_monitor(len(comps))
        for rank, c in enumerate(comps):
            prof = mon[rank]
            prof.enter("r", 0.0)
            prof.record_compute(c)
            prof.exit("r", wall)
            prof.finalize(wall)
        return mon

    def test_balanced_is_zero(self):
        assert imbalance_percent(self._mon([2.0, 2.0, 2.0]), "r") == pytest.approx(0.0)

    def test_wall_normalisation(self):
        # max=4, mean=3, wall=10 -> 10%
        mon = self._mon([2.0, 4.0], wall=10.0)
        assert imbalance_percent(mon, "r") == pytest.approx(10.0)

    def test_profile_vector(self):
        vec = imbalance_profile(self._mon([1.0, 2.0, 3.0]), "r")
        assert np.allclose(vec, [1.0, 2.0, 3.0])

    def test_irregularity_is_cv(self):
        mon = self._mon([1.0, 3.0])
        assert imbalance_irregularity(mon, "r") == pytest.approx(0.5)

    def test_empty_region_zero(self):
        assert imbalance_percent(self._mon([1.0]), "missing") == 0.0


class TestFig7:
    def test_breakdown_splits_system_share(self):
        mon = make_monitor(2)
        mon.system_time_share = 0.8
        for rank in range(2):
            prof = mon[rank]
            prof.enter("step", 0.0)
            prof.record_compute(1.0)
            prof.record_mpi("MPI_Allreduce", 8, 1.0)
            prof.exit("step", 2.0)
            prof.finalize(2.0)
        parts = fig7_breakdown(mon, "step")
        assert parts["comm_system"][0] == pytest.approx(0.8)
        assert parts["comm_user"][0] == pytest.approx(0.2)
        assert parts["compute"][0] == pytest.approx(1.0)

    def test_ascii_render_has_rank_rows(self):
        mon = make_monitor(3)
        for rank in range(3):
            prof = mon[rank]
            prof.enter("step", 0.0)
            prof.record_compute(1.0 + rank)
            prof.exit("step", 4.0)
            prof.finalize(4.0)
        text = render_fig7_ascii(mon, "step")
        assert text.count("|") >= 3

    def test_invalid_nprocs(self):
        with pytest.raises(ConfigError):
            IpmMonitor(0)

    def test_callkey_hashable(self):
        assert CallKey("MPI_Send", 8) == CallKey("MPI_Send", 8)
        assert len({CallKey("a", 1), CallKey("a", 1), CallKey("b", 1)}) == 2


class TestExportRoundTrip:
    def _multi_region_monitor(self):
        mon = make_monitor(2)
        for rank in range(2):
            prof = mon[rank]
            prof.enter("advect", 0.0)
            prof.record_compute(1.0 + rank)
            prof.record_mpi("MPI_Isend", 512, 0.05 * (rank + 1))
            prof.record_mpi("MPI_Isend", 512, 0.05)
            prof.record_mpi("MPI_Allreduce", 8, 0.02)
            prof.exit("advect", 2.0)
            prof.enter("solve", 2.0)
            prof.record_mpi("MPI_Allreduce", 8, 0.03)
            prof.record_io(0.4)
            prof.exit("solve", 5.0)
            prof.finalize(5.0)
        return mon

    def test_write_load_preserves_buckets_and_regions(self, tmp_path):
        from repro.ipm.export import load_json, write_json

        mon = self._multi_region_monitor()
        path = tmp_path / "profile.json"
        write_json(mon, path)
        data = load_json(path)

        assert data["nprocs"] == 2
        assert data["regions"] == mon.region_names()
        for rank, rank_data in enumerate(data["ranks"]):
            prof = mon[rank]
            assert rank_data["rank"] == rank
            assert list(rank_data["regions"]) == sorted(prof.regions)
            advect = rank_data["regions"]["advect"]
            # Per-(call, bytes) buckets survive with counts and times.
            by_key = {(c["call"], c["bytes"]): c for c in advect["calls"]}
            assert by_key[("MPI_Isend", 512)]["count"] == 2
            assert by_key[("MPI_Isend", 512)]["time"] == pytest.approx(
                0.05 * (rank + 1) + 0.05
            )
            assert by_key[("MPI_Allreduce", 8)]["count"] == 1
            # Buckets are emitted in deterministic (call, bytes) order.
            assert [c["call"] for c in advect["calls"]] == sorted(
                c["call"] for c in advect["calls"]
            )

    def test_totals_by_call_matches_monitor(self):
        from repro.ipm.export import totals_by_call

        mon = self._multi_region_monitor()
        totals = totals_by_call(mon)
        # Global region sees every call from both ranks.
        assert totals["MPI_Allreduce"] == pytest.approx(2 * (0.02 + 0.03))
        assert totals["MPI_Isend"] == pytest.approx(
            (0.05 + 0.05) + (0.10 + 0.05)
        )
        # Region-scoped totals only count that region's calls.
        solve = totals_by_call(mon, "solve")
        assert solve == {"MPI_Allreduce": pytest.approx(2 * 0.03)}
