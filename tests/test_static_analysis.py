"""Whole-program static analysis & fingerprint coverage.

Exercises ``repro.analysis.static`` against a synthetic fixture package
(worker discovery, call-graph closure through imports/re-exports/
methods, closure-attributed deep findings) and against the real repo
(fingerprint stability across processes, ``repro lint --deep``
cleanliness, fingerprint-keyed journal resume).
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys
import textwrap

import pytest

from repro.analysis.lint import RULES
from repro.analysis.static import (
    ModuleIndex,
    analyze_workers,
    definition_fingerprint,
    load_baseline,
    new_findings,
    to_sarif,
    worker_closure,
    worker_fingerprint,
)
from repro.cli import main
from repro.errors import ConfigError

REPO = pathlib.Path(__file__).resolve().parents[1]


# ---------------------------------------------------------------------------
# Fixture package
# ---------------------------------------------------------------------------

FIXTURE = {
    "__init__.py": """
        from fixpkg.workers import alpha_worker
    """,
    "workers.py": """
        from fixpkg import maths
        from fixpkg.registry import lookup
        from repro.harness.parallel import cell_worker

        @cell_worker("fix_alpha")
        def alpha_worker(x):
            return maths.double(x)

        @cell_worker("fix_beta")
        def beta_worker(x):
            helper = lookup("cubed")
            return helper(x)

        def unreachable(x):
            import os
            return os.environ["HOME"]
    """,
    "maths.py": """
        from fixpkg.deeper import offset

        def double(x):
            return 2 * x + offset()

        def cubed(x):
            return x * x * x
    """,
    "deeper.py": """
        import os

        TWEAK = 3

        def offset():
            return TWEAK + int(os.environ.get("FIX_OFFSET", "0"))
    """,
    "registry.py": """
        from fixpkg.maths import cubed

        TABLE = {"cubed": cubed}

        def lookup(name):
            return TABLE[name]
    """,
}


@pytest.fixture()
def fixpkg(tmp_path):
    root = tmp_path / "fixpkg"
    root.mkdir()
    for name, body in FIXTURE.items():
        (root / name).write_text(textwrap.dedent(body), encoding="utf-8")
    return root


def fix_index(root: pathlib.Path) -> ModuleIndex:
    return ModuleIndex(root, package="fixpkg")


# ---------------------------------------------------------------------------
# Worker discovery and call-graph closure
# ---------------------------------------------------------------------------

class TestClosure:
    def test_workers_discovered_statically(self, fixpkg):
        assert set(fix_index(fixpkg).workers()) == {"fix_alpha", "fix_beta"}

    def test_direct_call_chain_resolved(self, fixpkg):
        c = worker_closure("fix_alpha", fix_index(fixpkg))
        names = set(c.definitions)
        assert ("fixpkg.maths", "double") in names
        assert ("fixpkg.deeper", "offset") in names
        assert ("fixpkg.deeper", "TWEAK") in names  # constants bust the cache

    def test_registry_indirection_pulls_value_in(self, fixpkg):
        # beta reaches cubed through a dict-literal registry: lookup()
        # is resolved, and lookup's module pulls TABLE and cubed in.
        c = worker_closure("fix_beta", fix_index(fixpkg))
        names = set(c.definitions)
        assert ("fixpkg.registry", "lookup") in names
        assert ("fixpkg.registry", "TABLE") in names
        assert ("fixpkg.maths", "cubed") in names

    def test_unreachable_function_excluded(self, fixpkg):
        c = worker_closure("fix_alpha", fix_index(fixpkg))
        assert ("fixpkg.workers", "unreachable") not in set(c.definitions)
        assert ("fixpkg.maths", "cubed") not in set(c.definitions)

    def test_unknown_worker_rejected(self, fixpkg):
        with pytest.raises(ConfigError, match="unknown cell worker"):
            worker_closure("no_such", fix_index(fixpkg))

    def test_unregistered_worker_fingerprint_is_none(self):
        assert worker_fingerprint("definitely-not-a-worker") is None


# ---------------------------------------------------------------------------
# Fingerprint semantics
# ---------------------------------------------------------------------------

class TestFingerprints:
    def test_comment_and_formatting_invariant(self, fixpkg):
        before = worker_closure("fix_alpha", fix_index(fixpkg)).fingerprint
        # Rewrite a closure module with comments, a docstring, different
        # blank-line structure — everything but semantics.
        (fixpkg / "maths.py").write_text(textwrap.dedent("""
            '''Maths helpers (docstring added).'''
            # an explanatory comment
            from fixpkg.deeper import offset


            def double(x):
                '''Double and offset.'''
                # twice x, plus the calibrated offset
                return 2 * x + offset()

            def cubed(x):
                return x * x * x
        """), encoding="utf-8")
        after = worker_closure("fix_alpha", fix_index(fixpkg)).fingerprint
        assert before == after

    def test_semantic_edit_changes_fingerprint(self, fixpkg):
        before = worker_closure("fix_alpha", fix_index(fixpkg)).fingerprint
        text = (fixpkg / "maths.py").read_text(encoding="utf-8")
        (fixpkg / "maths.py").write_text(
            text.replace("2 * x", "3 * x"), encoding="utf-8"
        )
        after = worker_closure("fix_alpha", fix_index(fixpkg)).fingerprint
        assert before != after

    def test_edit_outside_closure_leaves_fingerprint(self, fixpkg):
        before = worker_closure("fix_alpha", fix_index(fixpkg)).fingerprint
        text = (fixpkg / "workers.py").read_text(encoding="utf-8")
        (fixpkg / "workers.py").write_text(
            text.replace('os.environ["HOME"]', 'os.environ["USER"]'),
            encoding="utf-8",
        )
        after = worker_closure("fix_alpha", fix_index(fixpkg)).fingerprint
        assert before == after

    def test_definition_fingerprint_width_and_determinism(self):
        import ast

        node = ast.parse("def f(x):\n    return x + 1\n").body[0]
        again = ast.parse("def f(x):  # comment\n    return x + 1\n").body[0]
        assert definition_fingerprint(node) == definition_fingerprint(again)
        assert len(definition_fingerprint(node)) == 32

    def test_repo_fingerprints_stable_across_processes(self):
        """Acceptance criterion: byte-stable across two fresh processes."""
        cmd = [sys.executable, "-m", "repro", "fingerprint", "--all", "--json"]
        env = {"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"}
        outs = [
            subprocess.run(
                cmd, capture_output=True, text=True, check=True,
                env=env, cwd=str(REPO),
            ).stdout
            for _ in range(2)
        ]
        assert outs[0] == outs[1]
        data = json.loads(outs[0])
        assert set(data) >= {"npb_point", "osu_curve", "faults_point"}
        assert all(len(v["fingerprint"]) == 32 for v in data.values())


# ---------------------------------------------------------------------------
# Deep findings: closure attribution
# ---------------------------------------------------------------------------

class TestDeepAttribution:
    def test_env_read_attributed_to_reaching_workers(self, fixpkg):
        report = analyze_workers(fix_index(fixpkg))
        det008 = [f for f in report.findings if f.rule == "DET008"]
        # offset() reads os.environ and both workers... only alpha
        # reaches deeper.offset; beta goes through the registry to cubed.
        assert det008, report.render()
        assert any(f.workers == ("fix_alpha",) for f in det008)

    def test_hazard_in_unreachable_function_dropped(self, fixpkg):
        report = analyze_workers(fix_index(fixpkg))
        # workers.unreachable reads os.environ but nothing reaches it.
        assert not any("workers.py" in f.path for f in report.findings), (
            report.render()
        )

    def test_repo_deep_lint_clean(self, capsys):
        """Acceptance criterion: ``repro lint --deep`` exits 0 on the repo."""
        assert main(["lint", "--deep", str(REPO / "src"),
                     str(REPO / "benchmarks")]) == 0
        out = capsys.readouterr().out
        assert "lint: clean" in out
        assert "npb_point" in out  # fingerprint summary printed

    def test_repo_fingerprint_check_stable(self, capsys):
        assert main(["fingerprint", "--all", "--check"]) == 0


# ---------------------------------------------------------------------------
# SARIF + baseline gating
# ---------------------------------------------------------------------------

class TestReporting:
    def test_sarif_document_shape(self, fixpkg):
        report = analyze_workers(fix_index(fixpkg))
        doc = to_sarif(report.findings, RULES)
        assert doc["version"] == "2.1.0"
        (run,) = doc["runs"]
        assert run["results"], "expected fixture findings in SARIF"
        result = run["results"][0]
        assert result["ruleId"].startswith("DET")
        assert "workers:" in result["message"]["text"]
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {r["ruleId"] for r in run["results"]} <= rule_ids

    def test_baseline_gates_only_new_findings(self, fixpkg, tmp_path):
        report = analyze_workers(fix_index(fixpkg))
        assert report.findings
        baseline_path = tmp_path / "base.json"
        baseline_path.write_text(json.dumps({
            "findings": [
                {"path": f.path, "rule": f.rule} for f in report.findings
            ],
        }), encoding="utf-8")
        baseline = load_baseline(baseline_path)
        assert new_findings(report.findings, baseline) == []
        # A finding in a file the baseline has never seen stays fatal.
        assert new_findings(report.findings, set()) == list(report.findings)

    def test_missing_baseline_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="baseline"):
            load_baseline(tmp_path / "nope.json")

    def test_committed_repo_baseline_is_loadable_and_empty(self):
        assert load_baseline(REPO / "STATIC_BASELINE.json") == set()

    def test_cli_sarif_baseline_pipeline(self, fixpkg, tmp_path, capsys,
                                         monkeypatch):
        # `repro lint --deep` must exit 1 on the dirty fixture, then 0
        # once the baseline covers its findings.
        monkeypatch.setattr(
            "repro.analysis.static.ModuleIndex.default",
            classmethod(lambda cls: fix_index(fixpkg)),
        )
        assert main(["lint", "--deep", str(fixpkg)]) == 1
        capsys.readouterr()
        assert main(["lint", "--deep", "--format", "sarif",
                     str(fixpkg)]) == 1
        sarif = json.loads(capsys.readouterr().out)
        rows = [
            {"path": (r["locations"][0]["physicalLocation"]
                      ["artifactLocation"]["uri"]),
             "rule": r["ruleId"]}
            for r in sarif["runs"][0]["results"]
        ]
        base = tmp_path / "base.json"
        base.write_text(json.dumps({"findings": rows}), encoding="utf-8")
        assert main(["lint", "--deep", "--baseline", str(base),
                     str(fixpkg)]) == 0
