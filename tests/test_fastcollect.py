"""Tests for the analytic collective fast-forward (repro.perf.fastcollect).

Fast-forwarding is a pure optimization: every test either shows the
closed-form path producing *bit-identical* per-rank wake times, payloads
and IPM counters (against the per-operation path), or shows it falling
back cleanly with the reason recorded.
"""

import json

import numpy as np
import pytest

from repro.errors import ConfigError, MpiError, SimulationError
from repro.harness.runner import run_batch
from repro.perf.fastcollect import (
    FastCollectReport,
    fastcollect_enabled,
    fastcollect_scope,
)
from repro.perf.replay import deterministic_variant, perf_banner
from repro.platforms import VAYU, all_platforms, get_platform
from repro.platforms.base import Platform
from repro.sim.engine import Engine
from repro.smpi.collectives import algorithms as alg
from repro.smpi.collectives.vectorized import VECTORIZED
from repro.smpi.world import MpiWorld

QUIET = deterministic_variant(VAYU)

#: Message sizes straddling every model boundary on Vayu: the 2048-byte
#: allreduce doubling/ring switch and the 12288-byte eager/rendezvous
#: threshold, plus a large rendezvous size.
SIZES = (8.0, 2048.0, 2049.0, 12288.0, 12289.0, 262144.0)

#: Rank counts covering intra-node, boundary and multi-node (Vayu nodes
#: have 8 cores), including a non-power-of-two.
NPROCS = (2, 4, 7, 16)

#: name -> generator factory for one collective call carrying a payload.
COLLECTIVE_CALLS = {
    "barrier": lambda comm, n: comm.barrier(),
    "bcast": lambda comm, n: comm.bcast(n, value=("x", comm.size)),
    "reduce": lambda comm, n: comm.reduce(n, value=comm.rank + 1),
    "allreduce": lambda comm, n: comm.allreduce(n, value=comm.rank + 1),
    "gather": lambda comm, n: comm.gather(n, value=comm.rank),
    "allgather": lambda comm, n: comm.allgather(n, value=comm.rank * 2),
    "scatter": lambda comm, n: comm.scatter(
        n, values=list(range(comm.size)) if comm.rank == 0 else None
    ),
    "alltoall": lambda comm, n: comm.alltoall(
        n, values=[comm.rank * 100 + d for d in range(comm.size)]
    ),
    "alltoallv": lambda comm, n: comm.alltoallv(n),
    "reduce_scatter": lambda comm, n: comm.reduce_scatter(n, value=1.5),
    "scan": lambda comm, n: comm.scan(n, value=comm.rank + 1),
    "exscan": lambda comm, n: comm.exscan(n, value=comm.rank + 1),
}


def _sweep_program(comm, call):
    """Staggered arrivals, two calls per size (second hits every cache),
    with a region toggle to exercise the IPM bucket invalidation."""
    trace = []
    for nbytes in SIZES:
        yield from comm.compute(flops=1e5 * (comm.rank + 1))
        r1 = yield from call(comm, nbytes)
        trace.append((comm.wtime(), r1))
        with comm.region("again"):
            r2 = yield from call(comm, nbytes)
        trace.append((comm.wtime(), r2))
    return trace


def _run_sweep(name: str, nprocs: int, fastcollect: bool):
    world = MpiWorld(QUIET, nprocs, seed=11, replay=False, fastcollect=fastcollect)
    result = world.launch(_sweep_program, COLLECTIVE_CALLS[name])
    return world, result


class TestEquivalence:
    """Closed-form completion == per-operation dispatch, bit for bit."""

    @pytest.mark.parametrize("name", sorted(COLLECTIVE_CALLS))
    def test_times_payloads_and_ipm_identical(self, name):
        for nprocs in NPROCS:
            slow_world, slow = _run_sweep(name, nprocs, False)
            fast_world, fast = _run_sweep(name, nprocs, True)
            assert fast.fastcollect is not None and fast.fastcollect.active
            assert fast.fastcollect.fast_ops == 2 * len(SIZES)
            # Exact float equality: same wake times and same payloads on
            # every rank, at every size, both calls.
            assert fast.rank_results == slow.rank_results, (name, nprocs)
            assert fast.wall_time == slow.wall_time
            for p_fast, p_slow in zip(
                fast_world.monitor.profiles, slow_world.monitor.profiles
            ):
                assert p_fast.snapshot() == p_slow.snapshot(), (name, nprocs)

    def test_value_free_calls_identical(self):
        """null_ok finisher skipping: value-free loops return None the
        same way the slow path's all-None finisher results do."""

        def program(comm):
            out = []
            for nbytes in (8.0, 4096.0):
                out.append((yield from comm.allreduce(nbytes)))
                out.append((yield from comm.bcast(nbytes)))
                out.append((yield from comm.reduce(nbytes)))
                out.append((yield from comm.alltoall(nbytes)))
                out.append((yield from comm.scan(nbytes)))
                out.append((yield from comm.exscan(nbytes)))
                out.append((yield from comm.scatter(nbytes)))
                out.append((yield from comm.reduce_scatter(nbytes)))
                out.append(comm.wtime())
            return out

        runs = {}
        for fc in (False, True):
            world = MpiWorld(QUIET, 4, seed=2, replay=False, fastcollect=fc)
            runs[fc] = world.launch(program)
        assert runs[True].rank_results == runs[False].rank_results
        assert all(
            v is None
            for rank in runs[True].rank_results
            for v in rank
            if not isinstance(v, float)
        )

    def test_split_and_subcomm_collectives(self):
        """comm_split takes the fast path and the sub-communicators it
        returns fast-forward with their own cached context."""

        def program(comm):
            sub = yield from comm.split(comm.rank % 2, key=comm.rank)
            total = yield from sub.allreduce(64, value=comm.rank)
            yield from sub.barrier()
            return (sub.size, sub.rank, total, comm.wtime())

        runs = {}
        for fc in (False, True):
            world = MpiWorld(QUIET, 8, seed=3, replay=False, fastcollect=fc)
            runs[fc] = world.launch(program)
        assert runs[True].rank_results == runs[False].rank_results
        report = runs[True].fastcollect
        # split + allreduce-per-half + barrier-per-half, all closed-form.
        assert report.fast_ops == 5 and report.slow_ops == 0

    def test_composite_without_memo_key_takes_slow_path(self):
        def program(comm):
            yield from comm.composite("wavefront", 512, lambda ctx, n: 1e-4 * n)
            return comm.wtime()

        runs = {}
        for fc in (False, True):
            world = MpiWorld(QUIET, 4, seed=5, replay=False, fastcollect=fc)
            runs[fc] = world.launch(program)
        assert runs[True].rank_results == runs[False].rank_results
        report = runs[True].fastcollect
        assert report.fast_ops == 0 and report.slow_ops == 1

    def test_collective_mismatch_detected(self):
        def program(comm):
            if comm.rank == 0:
                yield from comm.barrier()
            else:
                yield from comm.allreduce(8, value=1.0)

        world = MpiWorld(QUIET, 2, seed=1, replay=False, fastcollect=True)
        with pytest.raises(MpiError, match="in flight"):
            world.launch(program)


class TestVectorized:
    """The numpy models are bit-exact mirrors of the scalar ones."""

    SCALARS = {
        "barrier": lambda ctx, n: alg.barrier_time(ctx),
        "bcast": alg.bcast_time,
        "reduce": alg.reduce_time,
        "allreduce": alg.allreduce_time,
        "allgather": alg.allgather_time,
        "reduce_scatter": alg.reduce_scatter_time,
        "alltoall": alg.alltoall_time,
        "gather": alg.gather_time,
        "scatter": alg.scatter_time,
    }

    def _contexts(self):
        ctxs = []
        for spec_name in ("vayu", "dcc", "ec2"):
            spec = deterministic_variant(get_platform(spec_name))
            for nprocs in (1, 4, 16):
                world = MpiWorld(spec, nprocs, seed=1, fastcollect=False)
                ctxs.append(world._collective_context(world.comm_world(0)))
        return ctxs

    def test_registry_matches_scalar_models(self):
        assert set(self.SCALARS) == set(VECTORIZED)
        sizes = np.array(
            [0.0, 1.0, 8.0, 2048.0, 2049.0, 4096.0, 12288.0, 12289.0,
             65536.0, 65537.0, 262144.0, 4194304.0],
            dtype=np.float64,
        )
        for ctx in self._contexts():
            for key, vec_fn in VECTORIZED.items():
                got = vec_fn(ctx, sizes)
                expected = [self.SCALARS[key](ctx, float(n)) for n in sizes]
                assert got.tolist() == expected, (key, ctx)

    def test_priming_is_byte_identical_and_idempotent(self):
        def program(comm, prime):
            if prime:
                first = comm.prime_collectives("allreduce", SIZES)
                again = comm.prime_collectives("allreduce", SIZES)
                assert again == 0, "re-priming the same sweep must be a no-op"
            else:
                first = comm.prime_collectives("allreduce", [])
            out = []
            for nbytes in SIZES:
                yield from comm.allreduce(nbytes, value=1.0)
                out.append(comm.wtime())
            return (first, out)

        world = MpiWorld(QUIET, 8, seed=4, replay=False, fastcollect=True)
        primed = world.launch(program, True)
        unprimed = MpiWorld(
            QUIET, 8, seed=4, replay=False, fastcollect=True
        ).launch(program, False)
        slow = MpiWorld(
            QUIET, 8, seed=4, replay=False, fastcollect=False
        ).launch(program, False)
        assert [r[1] for r in primed.rank_results] == [r[1] for r in slow.rank_results]
        assert [r[1] for r in primed.rank_results] == [
            r[1] for r in unprimed.rank_results
        ]
        assert primed.rank_results[0][0] == len(SIZES)

    def test_prime_rejects_unknown_op(self):
        def program(comm):
            comm.prime_collectives("warp", [8])
            yield from comm.barrier()

        world = MpiWorld(QUIET, 2, seed=1, replay=False, fastcollect=True)
        with pytest.raises(ConfigError, match="no vectorized cost model"):
            world.launch(program)

    def test_prime_is_noop_without_fastcollect(self):
        def program(comm):
            assert comm.prime_collectives("allreduce", SIZES) == 0
            yield from comm.barrier()

        MpiWorld(QUIET, 2, seed=1, replay=False, fastcollect=False).launch(program)
        # Inactive (stochastic platform): also a no-op, not an error.
        MpiWorld(
            get_platform("vayu"), 2, seed=1, replay=False, fastcollect=True
        ).launch(program)


class TestFallback:
    @pytest.mark.parametrize("spec", all_platforms(), ids=lambda s: s.name)
    def test_registered_platforms_are_refused(self, spec):
        world = MpiWorld(spec, 4, seed=1, fastcollect=True)
        assert world.fastcollect is not None and not world.fastcollect.active
        assert world.fastcollect.reason
        assert "stochastic" in world.fastcollect.reason

    def test_sanitizer_forces_fallback(self):
        world = MpiWorld(QUIET, 4, seed=1, sanitize=True, fastcollect=True)
        assert not world.fastcollect.active
        assert "sanitizer" in world.fastcollect.reason

    def test_faults_force_fallback(self):
        world = MpiWorld(
            QUIET, 4, seed=1, faults="nfs:start=0,dur=10,factor=2", fastcollect=True
        )
        assert not world.fastcollect.active
        assert "fault" in world.fastcollect.reason

    def test_timeline_forces_fallback(self):
        world = MpiWorld(QUIET, 4, seed=1, timeline=True, fastcollect=True)
        assert not world.fastcollect.active
        assert "timeline" in world.fastcollect.reason

    def test_engine_tracer_forces_fallback(self):
        engine = Engine(seed=1, trace=True)
        world = MpiWorld(Platform(QUIET, engine), 4, fastcollect=True)
        assert not world.fastcollect.active
        assert "tracer" in world.fastcollect.reason

    def test_fallback_is_bitwise_inert(self):
        def program(comm):
            yield from comm.compute(flops=1e6)
            s = yield from comm.allreduce(8, value=comm.rank)
            return (s, comm.wtime())

        base = MpiWorld(get_platform("vayu"), 4, seed=3).launch(program)
        refused = MpiWorld(
            get_platform("vayu"), 4, seed=3, fastcollect=True
        ).launch(program)
        assert not refused.fastcollect.active
        assert refused.rank_results == base.rank_results
        assert refused.wall_time == base.wall_time

    def test_inactive_world_leaves_engine_unbatched(self):
        world = MpiWorld(get_platform("vayu"), 4, seed=1, fastcollect=True)
        assert not world.engine.batch_sleeps
        active = MpiWorld(QUIET, 4, seed=1, fastcollect=True)
        assert active.engine.batch_sleeps


class TestBatchedDispatch:
    def test_sleep_coalescing_cuts_events_not_clocks(self):
        from repro.perf.enginebench import _collective_phases

        full_engine, full = _collective_phases(False)
        fast_engine, fast = _collective_phases(True)
        assert full_engine.dispatched / fast_engine.dispatched >= 3.0
        assert fast.wall_time == full.wall_time
        assert fast.rank_results == full.rank_results
        for p_fast, p_full in zip(
            fast.monitor.profiles, full.monitor.profiles
        ):
            assert p_fast.snapshot() == p_full.snapshot()

    def test_collective_event_counts(self):
        from repro.perf.enginebench import COLLECT_REPS, collective_event_counts

        counts = collective_event_counts()
        assert counts["events_ratio"] >= 3.0
        assert counts["fast_ops"] == COLLECT_REPS
        assert counts["slow_ops"] == 0
        assert counts["fast_events"] < counts["full_events"]


class TestScheduleAt:
    def test_value_delivered_at_absolute_time(self):
        eng = Engine(seed=0)
        ev = eng.event("x")
        ev.schedule_at(5.0, "payload")
        woke = []

        def waiter():
            value = yield ev
            woke.append((eng.now, value))

        eng.process(waiter(), name="w")
        eng.run()
        assert woke == [(5.0, "payload")]

    def test_past_is_rejected(self):
        eng = Engine(seed=0)

        def advance():
            yield 3.0

        eng.process(advance(), name="advance")
        eng.run()
        assert eng.now == 3.0
        with pytest.raises(SimulationError, match="in the past"):
            eng.event("x").schedule_at(1.0)

    def test_double_trigger_rejected(self):
        eng = Engine(seed=0)
        ev = eng.event("x")
        ev.schedule_at(1.0, "a")
        with pytest.raises(SimulationError, match="already triggered"):
            ev.schedule_at(2.0, "b")
        with pytest.raises(SimulationError, match="already triggered"):
            ev.succeed("c")


class TestScopeAndReporting:
    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FASTCOLLECT", raising=False)
        assert not fastcollect_enabled()
        monkeypatch.setenv("REPRO_FASTCOLLECT", "1")
        assert fastcollect_enabled()
        monkeypatch.setenv("REPRO_FASTCOLLECT", "0")
        assert not fastcollect_enabled()

    def test_scope_collects_reports(self, monkeypatch):
        monkeypatch.delenv("REPRO_FASTCOLLECT", raising=False)

        def program(comm):
            yield from comm.allreduce(8, value=1.0)

        with fastcollect_scope(True) as reports:
            assert fastcollect_enabled()
            MpiWorld(QUIET, 2, seed=1, replay=False).launch(program)
        assert len(reports) == 1
        assert reports[0].active and reports[0].fast_ops == 1
        assert not fastcollect_enabled()

    def test_report_summaries(self):
        assert "off (noise)" in FastCollectReport(False, "noise", 0, 0).summary()
        assert "no collectives" in FastCollectReport(True, None, 0, 0).summary()
        assert "3/4" in FastCollectReport(True, None, 3, 1).summary()

    def test_perf_banner_segments(self):
        active = FastCollectReport(True, None, 10, 2)
        idle = FastCollectReport(False, "stochastic noise model", 0, 0)
        banner = perf_banner(None, fastcollect=[active])
        assert banner.startswith("perf: ")
        assert "fastcollect 10/12 collectives fast-forwarded" in banner
        mixed = perf_banner(None, fastcollect=[active, idle])
        assert "1/2 world(s) fell back" in mixed
        assert "stochastic noise model" in perf_banner(None, fastcollect=[idle])
        assert "saw no worlds" in perf_banner(None, fastcollect=[])
        # The legacy replay-only call renders exactly as before.
        assert "fastcollect" not in perf_banner([])

    def test_cli_flags_parse(self):
        from repro.cli import build_parser

        parser = build_parser()
        assert parser.parse_args(["run", "fig3"]).fastcollect is None
        assert parser.parse_args(["run", "fig3", "--fastcollect"]).fastcollect is True
        assert (
            parser.parse_args(["run", "fig3", "--no-fastcollect"]).fastcollect is False
        )
        args = parser.parse_args(["bench", "engine", "--append-history"])
        assert args.append_history == "BENCH_history.jsonl"
        assert parser.parse_args(["bench", "engine"]).append_history is None
        assert parser.parse_args(
            ["bench", "engine", "--workloads", "collectives"]
        ).workloads == ["collectives"]


class TestBatchIntegration:
    def test_all_experiments_byte_identical(self):
        off = run_batch(None, quick=True, seed=3, fastcollect=False)
        on = run_batch(None, quick=True, seed=3, fastcollect=True)
        assert off.perf_summary is None
        assert on.perf_summary is not None and "fastcollect" in on.perf_summary
        for eid, out in off.outputs.items():
            assert on.outputs[eid].render() == out.render(), eid
        assert on.comparison_rows() == off.comparison_rows()
        assert on.render().split("\n\n[perf:")[0] == off.render()


class TestBenchHistory:
    def test_append_history_round_trip(self, tmp_path):
        from repro.perf.enginebench import append_history

        rows = {
            "p2p": {"events_per_sec": 123.0, "events": 10.0},
            "collectives": {"events_per_sec": 456.0, "events": 20.0},
        }
        path = tmp_path / "hist.jsonl"
        first = append_history(rows, path, commit="abc1234")
        append_history(rows, path, commit="def5678")
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 4
        assert lines[0] == {
            "commit": "abc1234",
            "workload": "collectives",
            "events_per_sec": 456.0,
            "events": 20.0,
        }
        assert [r["workload"] for r in first] == ["collectives", "p2p"]
        assert {r["commit"] for r in lines[2:]} == {"def5678"}

    def test_committed_history_is_well_formed(self):
        import pathlib

        path = pathlib.Path(__file__).resolve().parents[1] / "BENCH_history.jsonl"
        records = [
            json.loads(line) for line in path.read_text().splitlines() if line
        ]
        assert records, "BENCH_history.jsonl must carry at least one entry"
        for record in records:
            assert {"commit", "workload", "events_per_sec", "events"} <= set(record)
            assert record["events_per_sec"] > 0
